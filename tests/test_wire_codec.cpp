// Wire codec suite (common/wire_codec.hpp): codec roundtrips, frame
// validation, the FileServer version-ring pull protocol, the fetch()
// version-pinning regression, and the end-to-end determinism + byte-savings
// contract (docs/SIMULATION.md §4b). Labelled tier1 + soak: the roundtrip
// fuzz at the bottom scales with VCDL_SOAK in ci/soak.sh.
#include "common/wire_codec.hpp"

#include <cmath>
#include <cstring>
#include <limits>

#include <gtest/gtest.h>

#include "common/compress.hpp"
#include "common/rng.hpp"
#include "core/trainer.hpp"
#include "grid/file_server.hpp"
#include "nn/model_io.hpp"
#include "testing/generators.hpp"
#include "testing/oracles.hpp"
#include "testing/prop.hpp"

namespace vcdl {
namespace {

using testing::PropConfig;
using testing::PropResult;
using testing::gen_blob;
using testing::prop_assert;
using testing::run_property;
using testing::tiny_image_spec;

std::vector<float> correlated_params(Rng& rng, std::size_t n) {
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.normal(0.0, 1.0));
  return v;
}

// A locally-trained copy: the base plus small updates on every weight.
std::vector<float> nudge(Rng& rng, const std::vector<float>& base,
                         double scale) {
  std::vector<float> v = base;
  for (auto& x : v) x += static_cast<float>(rng.normal(0.0, scale));
  return v;
}

// --- Mode names --------------------------------------------------------------

TEST(WireMode, NamesRoundTripAndBadNameThrows) {
  for (const WireMode m :
       {WireMode::full, WireMode::delta, WireMode::delta_q8}) {
    EXPECT_EQ(wire_mode_from_name(wire_mode_name(m)), m);
  }
  EXPECT_THROW(wire_mode_from_name("gzip"), InvalidArgument);
  EXPECT_THROW(wire_mode_from_name(""), InvalidArgument);
}

// --- Blob-level deltas (download path) ---------------------------------------

TEST(BlobDelta, RoundTripsAcrossSizeChanges) {
  Rng rng(1);
  const Blob base = gen_blob(rng, 4096);
  for (const std::size_t target_size : {0u, 1u, 3u, 100u, 4096u, 6000u}) {
    Blob target(target_size);
    for (std::size_t i = 0; i < target.size(); ++i) {
      target.data()[i] =
          i < base.size() ? base.data()[i]
                          : static_cast<std::uint8_t>(rng.uniform_index(256));
    }
    const Blob encoded = delta_encode(base.view(), target.view());
    EXPECT_EQ(delta_decode(base.view(), encoded.view()), target);
  }
}

TEST(BlobDelta, EmptyBaseActsAsFullEncoding) {
  Rng rng(2);
  const Blob target = gen_blob(rng, 2000);
  const Blob encoded = delta_encode({}, target.view());
  EXPECT_EQ(delta_decode({}, encoded.view()), target);
}

TEST(BlobDelta, NearIdenticalBlobsEncodeMuchSmallerThanFull) {
  Rng rng(3);
  const std::vector<float> base_params = correlated_params(rng, 4000);
  const std::vector<float> next_params = nudge(rng, base_params, 1e-5);
  const Blob base = save_params(std::span<const float>(base_params));
  const Blob target = save_params(std::span<const float>(next_params));
  const Blob encoded = delta_encode(base.view(), target.view());
  const std::size_t full_wire = compressed_size(target.view());
  EXPECT_EQ(delta_decode(base.view(), encoded.view()), target);
  // Small per-weight updates leave small word differences, so the upper
  // zigzag byte planes are zeros the LZ pass collapses; the delta must
  // decisively beat recompressing the whole blob. (The achievable ratio is
  // bounded by the update magnitude — each weight truly carries
  // ~log2(delta * 2^24) bits — which is why this uses a fine-tuning-scale
  // nudge rather than a large one.)
  EXPECT_LT(encoded.size() * 2, full_wire);
}

TEST(BlobDelta, BadMagicAndSizeMismatchThrow) {
  Rng rng(4);
  const Blob base = gen_blob(rng, 256);
  Blob encoded = delta_encode(base.view(), base.view());
  Blob junk = encoded;
  junk.data()[0] ^= 0xFF;  // magic
  EXPECT_THROW(delta_decode(base.view(), junk.view()), CorruptData);
  const Blob cut(std::vector<std::uint8_t>(encoded.view().begin(),
                                           encoded.view().end() - 3));
  EXPECT_THROW(delta_decode(base.view(), cut.view()), CorruptData);
}

// --- Parameter frames (upload path) ------------------------------------------

TEST(ParamFrame, LosslessDeltaDecodesBitExact) {
  Rng rng(5);
  const std::vector<float> base = correlated_params(rng, 3000);
  const std::vector<float> target = nudge(rng, base, 1e-2);
  const Blob frame = encode_params_delta(base, target, /*base_version=*/7);
  ASSERT_TRUE(is_wire_frame(frame));
  ASSERT_TRUE(validate_frame(frame));
  const WireFrame header = read_frame_header(frame);
  EXPECT_EQ(header.mode, WireMode::delta);
  EXPECT_EQ(header.base_version, 7u);
  EXPECT_EQ(header.count, target.size());
  const std::vector<float> decoded = decode_params(frame, base);
  ASSERT_EQ(decoded.size(), target.size());
  EXPECT_EQ(std::memcmp(decoded.data(), target.data(),
                        target.size() * sizeof(float)),
            0);
}

TEST(ParamFrame, LosslessDeltaSmallerThanFullUpload) {
  Rng rng(6);
  const std::vector<float> base = correlated_params(rng, 5000);
  const std::vector<float> target = nudge(rng, base, 1e-3);
  const Blob frame = encode_params_delta(base, target, 1);
  const Blob full = save_params(std::span<const float>(target));
  EXPECT_LT(frame.size(), full.size());
}

TEST(ParamFrame, Q8ErrorBoundedByBlockStep) {
  Rng rng(7);
  const std::vector<float> base = correlated_params(rng, 2500);
  const std::vector<float> target = nudge(rng, base, 5e-2);
  const Blob frame = encode_params_q8(base, target, 3);
  ASSERT_TRUE(validate_frame(frame));
  EXPECT_EQ(read_frame_header(frame).mode, WireMode::delta_q8);
  const std::vector<float> decoded = decode_params(frame, base);
  ASSERT_EQ(decoded.size(), target.size());
  // Per-block linear quantization: |error| <= (block hi - lo) / 255 / 2,
  // plus float rounding headroom. Bound with the global delta range, which
  // dominates every block's.
  float lo = 0.0f, hi = 0.0f;
  for (std::size_t i = 0; i < target.size(); ++i) {
    const float d = target[i] - base[i];
    lo = std::min(lo, d);
    hi = std::max(hi, d);
  }
  const float bound = (hi - lo) / 255.0f * 0.51f + 1e-6f;
  for (std::size_t i = 0; i < target.size(); ++i) {
    ASSERT_LE(std::abs(decoded[i] - target[i]), bound) << "index " << i;
  }
}

TEST(ParamFrame, Q8UploadAtLeastFourTimesSmallerThanFull) {
  Rng rng(8);
  const std::vector<float> base = correlated_params(rng, 8192);
  // A realistic local-SGD update: most weights move a little, a minority
  // move a lot. The quantized bytes of the small movers cluster around the
  // block zero-point, which the LZ pass then compresses past the raw 8-bit
  // floor of exactly 4x.
  std::vector<float> target = base;
  for (auto& x : target) {
    x += static_cast<float>(
        rng.normal(0.0, rng.bernoulli(0.25) ? 5e-2 : 1e-4));
  }
  const Blob frame = encode_params_q8(base, target, 1);
  const Blob full = save_params(std::span<const float>(target));
  EXPECT_GE(full.size(), frame.size() * 4);

  // Even worst-case dense gaussian deltas (incompressible 8-bit symbols)
  // stay close to the 4x floor: block headers cost 8 bytes per 1024 weights.
  const Blob dense =
      encode_params_q8(base, nudge(rng, base, 1e-2), 1);
  EXPECT_GE(full.size(), dense.size() * 7 / 2);
}

TEST(ParamFrame, ZeroDeltaAndConstantBlocksRoundTrip) {
  Rng rng(9);
  const std::vector<float> base = correlated_params(rng, 1500);
  // Identical copy: every block quantizes with step 0.
  const std::vector<float> same = decode_params(
      encode_params_q8(base, base, 0), base);
  for (std::size_t i = 0; i < base.size(); ++i) {
    ASSERT_EQ(same[i], base[i]) << "index " << i;
  }
  const std::vector<float> lossless =
      decode_params(encode_params_delta(base, base, 0), base);
  EXPECT_EQ(std::memcmp(lossless.data(), base.data(),
                        base.size() * sizeof(float)),
            0);
}

TEST(ParamFrame, HeaderCarriesBaseHashOfEncodeBase) {
  Rng rng(18);
  const std::vector<float> base = correlated_params(rng, 800);
  const std::vector<float> other = correlated_params(rng, 800);
  const std::vector<float> target = nudge(rng, base, 1e-2);
  const WireFrame d = read_frame_header(encode_params_delta(base, target, 4));
  const WireFrame q = read_frame_header(encode_params_q8(base, target, 4));
  // Both modes stamp the same params_hash of the base they encoded against;
  // a decoder holding different params under the same version number can
  // tell (the checkpoint-replay guard in VcAsgdAssimilator::decode_payload).
  EXPECT_EQ(d.base_hash, params_hash(base));
  EXPECT_EQ(q.base_hash, params_hash(base));
  EXPECT_NE(d.base_hash, params_hash(other));
  EXPECT_NE(d.base_hash, params_hash(target));
}

// Low-severity regression: a non-finite diff (diverged weight) used to feed
// NaN/Inf into the block's lo/hi and hand lround an undefined argument. Such
// diffs are excluded from the range and quantized to the block zero point;
// the frame stays valid and every decoded weight is finite.
TEST(ParamFrame, Q8NonFiniteDiffsEncodeFiniteAndBounded) {
  Rng rng(19);
  std::vector<float> base = correlated_params(rng, 2100);
  std::vector<float> target = nudge(rng, base, 1e-2);
  target[3] = std::numeric_limits<float>::quiet_NaN();
  target[1500] = std::numeric_limits<float>::infinity();
  target[2050] = -std::numeric_limits<float>::infinity();
  base[700] = std::numeric_limits<float>::quiet_NaN();  // NaN diff via base
  const Blob frame = encode_params_q8(base, target, 6);
  ASSERT_TRUE(validate_frame(frame));
  const std::vector<float> decoded = decode_params(frame, base);
  ASSERT_EQ(decoded.size(), target.size());
  float lo = 0.0f, hi = 0.0f;
  for (std::size_t i = 0; i < target.size(); ++i) {
    const float d = target[i] - base[i];
    if (!std::isfinite(d)) continue;
    lo = std::min(lo, d);
    hi = std::max(hi, d);
  }
  const float bound = (hi - lo) / 255.0f * 0.51f + 1e-6f;
  for (std::size_t i = 0; i < decoded.size(); ++i) {
    if (std::isfinite(base[i])) {
      ASSERT_TRUE(std::isfinite(decoded[i])) << "index " << i;
    }
    const float d = target[i] - base[i];
    if (std::isfinite(d)) {
      ASSERT_LE(std::abs(decoded[i] - target[i]), bound) << "index " << i;
    }
  }
}

TEST(ParamFrame, FullParamBlobIsNotAFrame) {
  Rng rng(10);
  const std::vector<float> params = correlated_params(rng, 500);
  const Blob full = save_params(std::span<const float>(params));
  EXPECT_FALSE(is_wire_frame(full));
  EXPECT_FALSE(validate_frame(full));
  EXPECT_THROW(read_frame_header(full), CorruptData);
}

TEST(ParamFrame, EveryByteFlipIsDetected) {
  Rng rng(11);
  const std::vector<float> base = correlated_params(rng, 64);
  const std::vector<float> target = nudge(rng, base, 1e-2);
  const Blob frame = encode_params_delta(base, target, 2);
  for (std::size_t i = 0; i < frame.size(); ++i) {
    Blob corrupt = frame;
    corrupt.data()[i] ^= 0x41;
    // The flip must never produce a frame that both validates and decodes:
    // either the structure breaks, the checksum catches it, or decode
    // throws. Silent acceptance would poison the α-blend.
    if (validate_frame(corrupt)) {
      ADD_FAILURE() << "byte flip at " << i << " validated";
    } else {
      EXPECT_THROW((void)decode_params(corrupt, base), CorruptData)
          << "byte " << i;
    }
  }
}

TEST(ParamFrame, BaseSizeMismatchThrows) {
  Rng rng(12);
  const std::vector<float> base = correlated_params(rng, 300);
  const Blob frame = encode_params_delta(base, base, 1);
  const std::vector<float> wrong(base.begin(), base.begin() + 200);
  EXPECT_THROW((void)decode_params(frame, wrong), CorruptData);
}

// --- FileServer pull protocol ------------------------------------------------

Blob param_blob(Rng& rng, std::size_t n) {
  const std::vector<float> params = correlated_params(rng, n);
  return save_params(std::span<const float>(params));
}

Blob republished_blob(Rng& rng, const Blob& previous) {
  std::vector<float> params = load_params(previous);
  for (auto& x : params) x += static_cast<float>(rng.normal(0.0, 1e-5));
  return save_params(std::span<const float>(params));
}

TEST(FileServerPull, DeltaBilledWhenBaseInRing) {
  Rng rng(13);
  FileServer fs;
  fs.set_wire_codec(WireMode::delta, /*version_ring=*/4);
  Blob v1 = param_blob(rng, 4000);
  Blob v2 = republished_blob(rng, v1);
  fs.publish("params", std::move(v1), /*compress=*/true,
             /*delta_capable=*/true);

  const auto first = fs.pull("params", /*have_version=*/0);
  EXPECT_FALSE(first.was_delta);
  EXPECT_EQ(first.version, 1u);
  EXPECT_EQ(first.wire_bytes, fs.wire_size("params"));

  fs.publish("params", std::move(v2), true, true);
  const auto second = fs.pull("params", first.version);
  EXPECT_TRUE(second.was_delta);
  EXPECT_EQ(second.version, 2u);
  // The acceptance bar: a delta pull costs under half the full blob.
  EXPECT_LT(second.wire_bytes * 2, fs.wire_size("params"));

  const auto& s = fs.stats();
  EXPECT_EQ(s.delta_pulls, 1u);
  EXPECT_EQ(s.delta_fallbacks, 0u);
  EXPECT_EQ(s.bytes_delta_full,
            first.wire_bytes + fs.wire_size("params"));
  EXPECT_EQ(s.bytes_delta_wire, first.wire_bytes + second.wire_bytes);
}

TEST(FileServerPull, SameVersionRepullIsNearlyFree) {
  Rng rng(14);
  FileServer fs;
  fs.set_wire_codec(WireMode::delta, 4);
  fs.publish("params", param_blob(rng, 4000), true, true);
  const auto first = fs.pull("params", 0);
  // Non-sticky files are re-pulled every workunit; when nothing changed the
  // delta against the client's own version is a handful of header bytes.
  const auto again = fs.pull("params", first.version);
  EXPECT_TRUE(again.was_delta);
  // An all-zero difference stream still pays LZ match tokens (~2 bytes per
  // 131-byte run), so "nearly free" means a few hundred bytes for a 16 KB
  // blob — bound it at 5% of the full wire cost.
  EXPECT_LT(again.wire_bytes * 20, fs.wire_size("params"));
}

TEST(FileServerPull, AgedOutVersionFallsBackToFullBlob) {
  Rng rng(15);
  FileServer fs;
  fs.set_wire_codec(WireMode::delta, /*version_ring=*/2);
  Blob blob = param_blob(rng, 2000);
  fs.publish("params", Blob(blob), true, true);
  const auto first = fs.pull("params", 0);
  for (int i = 0; i < 4; ++i) {  // push version 1 out of the 2-deep ring
    blob = republished_blob(rng, blob);
    fs.publish("params", Blob(blob), true, true);
  }
  const auto stale = fs.pull("params", first.version);
  EXPECT_FALSE(stale.was_delta);
  EXPECT_EQ(stale.wire_bytes, fs.wire_size("params"));
  EXPECT_EQ(fs.stats().delta_fallbacks, 1u);
}

TEST(FileServerPull, FullModeBillsExactlyLikeFetch) {
  Rng rng(16);
  FileServer fs;  // default codec: full
  fs.publish("params", param_blob(rng, 2000), true, true);
  const auto a = fs.pull("params", 0);
  const auto b = fs.pull("params", a.version);
  EXPECT_FALSE(a.was_delta);
  EXPECT_FALSE(b.was_delta);
  EXPECT_EQ(a.wire_bytes, fs.wire_size("params"));
  EXPECT_EQ(b.wire_bytes, fs.wire_size("params"));
  EXPECT_EQ(fs.stats().delta_pulls, 0u);
  EXPECT_EQ(fs.stats().bytes_wire, 2 * fs.wire_size("params"));
}

// Satellite regression: fetch()/pull() payloads are version-pinned. Before
// the shared_ptr payload, publish() replaced the Entry's Blob in place and a
// held reference dangled — exactly the lifetime of an in-flight simulated
// transfer that straddles a republish.
TEST(FileServerPull, PayloadSurvivesRepublishMidTransfer) {
  Rng rng(17);
  FileServer fs;
  fs.set_wire_codec(WireMode::delta, 4);
  Blob v1 = param_blob(rng, 3000);
  const Blob v1_copy = v1;
  fs.publish("params", std::move(v1), true, true);

  // Transfer starts: the client holds the version-1 payload...
  const std::shared_ptr<const Blob> in_flight = fs.fetch("params");
  // ...and the assimilator republishes twice before it completes.
  fs.publish("params", republished_blob(rng, v1_copy), true, true);
  fs.publish("params", param_blob(rng, 3000), true, true);

  ASSERT_NE(in_flight, nullptr);
  EXPECT_EQ(*in_flight, v1_copy);  // still the bytes the transfer started with
  EXPECT_EQ(load_params(*in_flight), load_params(v1_copy));
}

// --- End-to-end: determinism + measured byte savings -------------------------

ExperimentSpec codec_spec(const std::string& mode) {
  ExperimentSpec spec = tiny_image_spec(/*trace=*/true);
  spec.wire_codec = mode;
  return spec;
}

TEST(WireCodecE2E, LosslessDeltaRunsAreDeterministicAndHalveParamBytes) {
  VcTrainer a(codec_spec("delta"));
  const TrainResult ra = a.run();
  VcTrainer b(codec_spec("delta"));
  const TrainResult rb = b.run();

  // Same-seed lossless runs are TraceDigest- and metrics-identical.
  EXPECT_GT(a.trace().digest().events, 0u);
  EXPECT_EQ(a.trace().digest(), b.trace().digest());
  EXPECT_EQ(ra.metrics.to_json(), rb.metrics.to_json());

  // The codec actually engaged and paid off: parameter pulls cost less than
  // half of what the same pulls would have moved as full blobs.
  EXPECT_GT(ra.totals.delta_pulls, 0u);
  EXPECT_GT(ra.totals.param_bytes_full, 0u);
  EXPECT_LE(ra.totals.param_bytes_wire * 2, ra.totals.param_bytes_full);
  EXPECT_LT(ra.totals.bytes_wire, ra.totals.param_bytes_full);

  // Lossless means training still works: both epochs completed with finite
  // published parameters.
  EXPECT_EQ(ra.epochs.size(), codec_spec("delta").max_epochs);
  for (const float p : ra.final_params) ASSERT_TRUE(std::isfinite(p));
}

TEST(WireCodecE2E, FullModeKeepsDeltaCountersAtZero) {
  VcTrainer t(codec_spec("full"));
  const TrainResult r = t.run();
  EXPECT_EQ(r.totals.delta_pulls, 0u);
  EXPECT_EQ(r.totals.param_bytes_wire, 0u);
  EXPECT_EQ(r.totals.param_bytes_full, 0u);
  EXPECT_EQ(r.metrics.counters.at("file_server.delta_pulls"), 0u);
  EXPECT_EQ(r.metrics.counters.at("wire_codec.frames_decoded"), 0u);
}

TEST(WireCodecE2E, QuantizedUploadsShrinkPerResultAndStillLearn) {
  VcTrainer full(codec_spec("full"));
  const TrainResult rf = full.run();
  VcTrainer q8(codec_spec("delta_q8"));
  const TrainResult rq = q8.run();

  // Per-upload average (event counts differ across modes because billed
  // bytes change transfer timings): q8 frames are ~4x smaller than full
  // parameter blobs; assert a conservative 3x.
  const auto per_upload = [](const TrainResult& r) {
    return static_cast<double>(r.totals.bytes_uploaded) /
           static_cast<double>(r.metrics.counters.at("client.completed"));
  };
  EXPECT_GE(per_upload(rf), per_upload(rq) * 3.0);

  // Lossy but sane: the run completes and final accuracy stays within a few
  // points of the full-precision run (the ISSUE's ablation contract; the
  // tiny two-epoch workload is noisy, so allow generous slack).
  EXPECT_EQ(rq.epochs.size(), rf.epochs.size());
  EXPECT_GT(rq.final_epoch().mean_subtask_acc,
            rf.final_epoch().mean_subtask_acc - 0.05);
  for (const float p : rq.final_params) ASSERT_TRUE(std::isfinite(p));
  EXPECT_GT(rq.metrics.counters.at("wire_codec.frames_decoded"), 0u);
  // Quantization must actually flow through the blend — if the assimilator
  // silently fell back to full payloads the parameter trajectories would
  // match bit for bit.
  ASSERT_EQ(rq.final_params.size(), rf.final_params.size());
  EXPECT_NE(std::memcmp(rq.final_params.data(), rf.final_params.data(),
                        rf.final_params.size() * sizeof(float)),
            0);
}

// --- Roundtrip fuzz (scales with VCDL_SOAK via ci/soak.sh) -------------------

TEST(WireCodecFuzz, RoundTripsUnderRandomBasesAndModes) {
  PropConfig cfg;
  cfg.name = "wire-codec.roundtrip";
  cfg.suite = "test_wire_codec";
  cfg.trials = 25;
  cfg.max_size = 24;
  const PropResult r = run_property(cfg, [](Rng& rng, int size) {
    const std::size_t n = 1 + rng.uniform_index(
                                  static_cast<std::size_t>(size) * 120 + 1);
    std::vector<float> base(n), target(n);
    const double scale = std::pow(10.0, -3.0 * rng.uniform());
    for (std::size_t i = 0; i < n; ++i) {
      base[i] = static_cast<float>(rng.normal(0.0, 1.0));
      // Mix of untouched, nudged, and completely replaced weights.
      switch (rng.uniform_index(3)) {
        case 0: target[i] = base[i]; break;
        case 1:
          target[i] = base[i] + static_cast<float>(rng.normal(0.0, scale));
          break;
        default: target[i] = static_cast<float>(rng.normal(0.0, 1.0)); break;
      }
    }
    // Lossless frame: bit-exact.
    const Blob frame = encode_params_delta(base, target, n);
    prop_assert(validate_frame(frame), "lossless frame failed validation");
    const std::vector<float> decoded = decode_params(frame, base);
    prop_assert(std::memcmp(decoded.data(), target.data(),
                            n * sizeof(float)) == 0,
                "lossless decode not bit-exact at n=" + std::to_string(n));

    // Quantized frame: error bounded by the global delta range's step.
    const Blob qframe = encode_params_q8(base, target, n);
    prop_assert(validate_frame(qframe), "q8 frame failed validation");
    const std::vector<float> qdecoded = decode_params(qframe, base);
    float lo = 0.0f, hi = 0.0f;
    for (std::size_t i = 0; i < n; ++i) {
      lo = std::min(lo, target[i] - base[i]);
      hi = std::max(hi, target[i] - base[i]);
    }
    const float bound = (hi - lo) / 255.0f * 0.51f + 1e-6f;
    for (std::size_t i = 0; i < n; ++i) {
      prop_assert(std::abs(qdecoded[i] - target[i]) <= bound,
                  "q8 decode out of bounds at i=" + std::to_string(i));
    }

    // Blob-level delta + LZ roundtrip across random contents and size
    // changes (the compress edge-case fuzz folded into the harness).
    const Blob blob_base = gen_blob(rng, static_cast<std::size_t>(size) * 64);
    const Blob blob_target =
        rng.bernoulli(0.5)
            ? gen_blob(rng, static_cast<std::size_t>(size) * 64)
            : blob_base;
    const Blob enc = delta_encode(blob_base.view(), blob_target.view());
    prop_assert(delta_decode(blob_base.view(), enc.view()) == blob_target,
                "blob delta roundtrip mismatch");
    prop_assert(decompress(compress(blob_target)) == blob_target,
                "compress roundtrip mismatch");
  });
  EXPECT_TRUE(r.passed) << r.message << "\nreplay: " << r.repro;
}

}  // namespace
}  // namespace vcdl
