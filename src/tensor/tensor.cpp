#include "tensor/tensor.hpp"

#include <sstream>

#include "common/rng.hpp"

namespace vcdl {

std::string Shape::to_string() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (i) os << ", ";
    os << dims_[i];
  }
  os << ']';
  return os.str();
}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(data.begin(), data.end()) {
  // The aligned backing store cannot adopt a default-allocated vector, so
  // this convenience ctor copies. It only appears off the hot path (test
  // data generators); hot-path code constructs by shape and writes in place.
  VCDL_CHECK(shape_.numel() == data_.size(),
             "Tensor: data size " + std::to_string(data_.size()) +
                 " does not match shape " + shape_.to_string());
}

Tensor Tensor::full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::randn(Shape shape, Rng& rng, float mean, float stddev) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) {
    v = static_cast<float>(rng.normal(mean, stddev));
  }
  return t;
}

Tensor Tensor::rand(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) {
    v = static_cast<float>(rng.uniform(lo, hi));
  }
  return t;
}

Tensor Tensor::reshaped(Shape new_shape) const {
  VCDL_CHECK(new_shape.numel() == numel(),
             "reshaped: element count mismatch " + shape_.to_string() + " -> " +
                 new_shape.to_string());
  Tensor t;
  t.shape_ = std::move(new_shape);
  t.data_ = data_;
  return t;
}

}  // namespace vcdl
