file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_distributed.dir/bench_fig2_distributed.cpp.o"
  "CMakeFiles/bench_fig2_distributed.dir/bench_fig2_distributed.cpp.o.d"
  "bench_fig2_distributed"
  "bench_fig2_distributed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_distributed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
