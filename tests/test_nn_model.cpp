#include "nn/model.hpp"
#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "nn/activations.hpp"
#include "nn/dense.hpp"
#include "nn/loss.hpp"
#include "nn/model_io.hpp"
#include "nn/model_zoo.hpp"
#include "nn/optimizer.hpp"
#include "tensor/ops.hpp"

namespace vcdl {
namespace {

Model tiny_mlp(std::uint64_t seed = 1) {
  return make_mlp(MlpSpec{.inputs = 4, .hidden = {8}, .classes = 3}, seed);
}

TEST(Model, ParameterCountMlp) {
  Model m = tiny_mlp();
  // 4*8 + 8 + 8*3 + 3 = 67
  EXPECT_EQ(m.parameter_count(), 67u);
}

TEST(Model, FlatParamsRoundTrip) {
  Model m = tiny_mlp();
  auto flat = m.flat_params();
  ASSERT_EQ(flat.size(), m.parameter_count());
  for (auto& v : flat) v += 1.0f;
  m.set_flat_params(flat);
  EXPECT_EQ(m.flat_params(), flat);
}

TEST(Model, SetFlatParamsSizeMismatchThrows) {
  Model m = tiny_mlp();
  const std::vector<float> wrong(10, 0.0f);
  EXPECT_THROW(m.set_flat_params(wrong), Error);
}

TEST(Model, CopyIsIndependent) {
  Model a = tiny_mlp();
  Model b = a;
  auto flat = a.flat_params();
  flat[0] += 5.0f;
  a.set_flat_params(flat);
  EXPECT_NE(a.flat_params()[0], b.flat_params()[0]);
}

TEST(Model, ForwardShape) {
  Model m = tiny_mlp();
  const Tensor y = m.forward(Tensor(Shape{5, 4}), false);
  EXPECT_TRUE(y.shape() == (Shape{5, 3}));
}

TEST(Model, ZeroGradsClearsAll) {
  Model m = tiny_mlp();
  Rng rng(2);
  const Tensor x = Tensor::randn(Shape{2, 4}, rng);
  const Tensor y = m.forward(x, true);
  const std::vector<std::uint16_t> labels = {0, 1};
  const auto loss = softmax_cross_entropy(y, labels);
  m.backward(loss.grad);
  m.zero_grads();
  for (Tensor* g : m.grads()) {
    for (const float v : g->flat()) EXPECT_EQ(v, 0.0f);
  }
}

TEST(ModelIo, ArchitectureRoundTripMlp) {
  Model m = tiny_mlp(7);
  const Blob arch = save_architecture(m);
  Model rebuilt = load_architecture(arch, 7);
  EXPECT_EQ(rebuilt.parameter_count(), m.parameter_count());
  EXPECT_EQ(rebuilt.layer_count(), m.layer_count());
}

TEST(ModelIo, ArchitectureRoundTripResNet) {
  const ResNetLiteSpec spec{.height = 8, .width = 8, .base_filters = 4,
                            .blocks = 1};
  Model m = make_resnet_lite(spec, 3);
  Model rebuilt = load_architecture(save_architecture(m), 3);
  EXPECT_EQ(rebuilt.parameter_count(), m.parameter_count());
  // Same seed ⇒ identical fresh initialization.
  EXPECT_EQ(rebuilt.flat_params(),
            load_architecture(save_architecture(m), 3).flat_params());
  // Forward works on the rebuilt model.
  const Tensor y = rebuilt.forward(Tensor(Shape{1, 3, 8, 8}), false);
  EXPECT_TRUE(y.shape() == (Shape{1, 10}));
}

TEST(ModelIo, ParamsRoundTrip) {
  Model m = tiny_mlp(9);
  const Blob blob = save_params(m);
  const auto flat = load_params(blob);
  EXPECT_EQ(flat, m.flat_params());
  Model other = tiny_mlp(10);
  load_params_into(other, blob);
  EXPECT_EQ(other.flat_params(), m.flat_params());
}

TEST(ModelIo, CorruptedParamsThrow) {
  Model m = tiny_mlp(11);
  Blob blob = save_params(m);
  blob.data()[blob.size() / 2] ^= 0xFF;
  EXPECT_THROW(load_params(blob), CorruptData);
}

TEST(ModelIo, BadArchMagicThrows) {
  Blob junk(std::vector<std::uint8_t>{1, 2, 3, 4, 5});
  EXPECT_THROW(load_architecture(junk), CorruptData);
}

TEST(Loss, SoftmaxRowsSumToOne) {
  Rng rng(3);
  const Tensor logits = Tensor::randn(Shape{4, 6}, rng);
  const Tensor probs = softmax(logits);
  for (std::size_t r = 0; r < 4; ++r) {
    EXPECT_NEAR(ops::sum(probs.flat().subspan(r * 6, 6)), 1.0f, 1e-5f);
  }
}

TEST(Loss, CrossEntropyKnownValue) {
  // Uniform logits over 4 classes ⇒ loss = ln(4).
  const Tensor logits(Shape{1, 4});
  const std::vector<std::uint16_t> labels = {2};
  const auto result = softmax_cross_entropy(logits, labels);
  EXPECT_NEAR(result.loss, std::log(4.0), 1e-6);
  // Gradient: p - onehot, divided by batch.
  EXPECT_NEAR(result.grad[0], 0.25f, 1e-6f);
  EXPECT_NEAR(result.grad[2], -0.75f, 1e-6f);
}

TEST(Loss, GradientSumsToZeroPerRow) {
  Rng rng(4);
  const Tensor logits = Tensor::randn(Shape{3, 5}, rng);
  const std::vector<std::uint16_t> labels = {0, 4, 2};
  const auto result = softmax_cross_entropy(logits, labels);
  for (std::size_t r = 0; r < 3; ++r) {
    EXPECT_NEAR(ops::sum(result.grad.flat().subspan(r * 5, 5)), 0.0f, 1e-6f);
  }
}

TEST(Loss, LabelOutOfRangeThrows) {
  const Tensor logits(Shape{1, 3});
  const std::vector<std::uint16_t> labels = {3};
  EXPECT_THROW(softmax_cross_entropy(logits, labels), Error);
}

TEST(Loss, AccuracyCountsArgmaxMatches) {
  Tensor logits(Shape{2, 3});
  logits.at(0, 1) = 5.0f;  // pred 1
  logits.at(1, 0) = 5.0f;  // pred 0
  const std::vector<std::uint16_t> labels = {1, 2};
  EXPECT_DOUBLE_EQ(accuracy(logits, labels), 0.5);
}

// Each optimizer must reduce loss on a small separable problem.
class OptimizerSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(OptimizerSweep, ReducesLoss) {
  Model m = tiny_mlp(20);
  auto opt = make_optimizer(GetParam(), 0.05);
  Rng rng(21);
  const Tensor x = Tensor::randn(Shape{30, 4}, rng);
  std::vector<std::uint16_t> labels(30);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    // Label determined by the sign pattern of the inputs ⇒ learnable.
    labels[i] = static_cast<std::uint16_t>((x[i * 4] > 0) +
                                           (x[i * 4 + 1] > 0));
  }
  double first_loss = 0;
  double last_loss = 0;
  for (int step = 0; step < 60; ++step) {
    const Tensor logits = m.forward(x, true);
    const auto loss = softmax_cross_entropy(logits, labels);
    if (step == 0) first_loss = loss.loss;
    last_loss = loss.loss;
    m.zero_grads();
    m.backward(loss.grad);
    opt->step(m);
  }
  EXPECT_LT(last_loss, first_loss * 0.7);
}

INSTANTIATE_TEST_SUITE_P(Optimizers, OptimizerSweep,
                         ::testing::Values("sgd", "momentum", "adam"));

TEST(Optimizer, UnknownNameThrows) {
  EXPECT_THROW(make_optimizer("adagrad", 0.1), Error);
}

TEST(Optimizer, LearningRateAccessors) {
  auto opt = make_optimizer("sgd", 0.25);
  EXPECT_DOUBLE_EQ(opt->learning_rate(), 0.25);
  opt->set_learning_rate(0.5);
  EXPECT_DOUBLE_EQ(opt->learning_rate(), 0.5);
}

TEST(ModelZoo, ResNetLiteForwardShapes) {
  const ResNetLiteSpec spec{.height = 12, .width = 12, .base_filters = 4,
                            .blocks = 1};
  Model m = make_resnet_lite(spec, 5);
  const Tensor y = m.forward(Tensor(Shape{2, 3, 12, 12}), false);
  EXPECT_TRUE(y.shape() == (Shape{2, 10}));
  EXPECT_GT(m.parameter_count(), 1000u);
}

TEST(ModelZoo, RejectsOddInput) {
  const ResNetLiteSpec spec{.height = 7, .width = 12};
  EXPECT_THROW(make_resnet_lite(spec, 1), Error);
}

}  // namespace
}  // namespace vcdl
