// True volunteer computing: training on machines that come and go (§II).
//
// The paper replaces untrusted volunteer devices with preemptible cloud
// instances, but the middleware was designed for the original setting:
// "volunteer computers may join or leave projects at will, and users may
// start or shutdown their devices any time" (§II-C). This example trains the
// same job on three fleets —
//   * a reliable cloud fleet,
//   * a preemptible cloud fleet (the paper's setting), and
//   * a volunteer fleet with home-desktop / laptop duty cycles —
// and compares time, disruption and delivered accuracy. The deadline-driven
// scheduler recovers lost work in all three; only the time-to-finish differs.
#include <iostream>

#include "common/config.hpp"
#include "common/table.hpp"
#include "core/trainer.hpp"

int main(int argc, char** argv) {
  using namespace vcdl;
  const Config cfg = Config::from_args(argc, argv);
  const std::size_t epochs = static_cast<std::size_t>(cfg.get_int("max_epochs", 4));

  struct FleetKind {
    const char* name;
    bool preemptible;
    double interruption_per_hour;
    AvailabilityModel availability;
  };
  const FleetKind fleets[] = {
      {"reliable cloud", false, 0.0, AvailabilityModel::always_on()},
      {"preemptible cloud", true, 0.5, AvailabilityModel::always_on()},
      {"volunteer desktops", false, 0.0, AvailabilityModel::home_desktop()},
      {"volunteer laptops", false, 0.0, AvailabilityModel::laptop()},
  };

  std::cout << "Same job (" << epochs << " epochs, P3C4T2, var alpha) on four"
            << " fleets:\n\n";
  Table table({"fleet", "duty cycle", "hours", "final acc", "churn events",
               "timeouts"});
  for (const auto& fleet : fleets) {
    ExperimentSpec spec;
    spec.parameter_servers = 3;
    spec.clients = 4;
    spec.tasks_per_client = 2;
    spec.alpha = "var";
    spec.max_epochs = epochs;
    spec.preemptible = fleet.preemptible;
    spec.interruption_per_hour = fleet.interruption_per_hour;
    spec.availability = fleet.availability;
    spec.subtask_timeout_s = 300.0;
    spec.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 7));
    spec.trace = true;
    VcTrainer trainer(spec);
    const TrainResult r = trainer.run();
    const std::size_t churn = trainer.trace().count(TraceKind::preempted);
    table.add_row({fleet.name,
                   Table::fmt(fleet.availability.duty_cycle() * 100.0, 0) + "%",
                   Table::fmt(r.totals.duration_s / 3600.0, 2),
                   Table::fmt(r.final_epoch().mean_subtask_acc, 3),
                   Table::fmt(churn), Table::fmt(r.totals.timeouts)});
    std::cout << "  " << fleet.name << " done\n";
  }
  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\nReading: churn slows training (each lost subtask costs up to"
               " one timeout period) but never blocks it — the scheduler"
               " reassigns lost work, exactly the fault-tolerance design of"
               " §III-B. Volunteer fleets also keep their sticky caches across"
               " sessions, unlike replaced preemptible instances.\n";
  return 0;
}
