# Empty dependencies file for bench_secIVE_preemptible.
# This may be replaced when dependencies are built.
