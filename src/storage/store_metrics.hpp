// Shared obs handles for the parameter stores. Both consistency flavors
// record into the same "store.*" counters — an experiment runs one store at a
// time, and the snapshot should not care which flavor produced the traffic.
#pragma once

#include "obs/metrics.hpp"

namespace vcdl {

struct StoreMetrics {
  obs::Counter& reads = obs::registry().counter("store.reads");
  obs::Counter& writes = obs::registry().counter("store.writes");
  obs::Counter& lost_updates = obs::registry().counter("store.lost_updates");
  obs::Counter& contended =
      obs::registry().counter("store.contended_updates");
};

inline StoreMetrics& store_metrics() {
  static StoreMetrics m;
  return m;
}

}  // namespace vcdl
