file(REMOVE_RECURSE
  "libvcdl_nn.a"
)
