#include <atomic>
#include <thread>

#include <gtest/gtest.h>

#include "storage/eventual_store.hpp"
#include "storage/strong_store.hpp"

namespace vcdl {
namespace {

Blob blob_of(std::uint64_t v) {
  BinaryWriter w;
  w.write(v);
  return w.take();
}

std::uint64_t value_of(const Blob& b) { return BinaryReader(b).read<std::uint64_t>(); }

// --- Shared semantics across both stores ------------------------------------

class StoreKinds : public ::testing::TestWithParam<const char*> {
 protected:
  std::unique_ptr<KvStore> store_ = make_store(GetParam());
};

TEST_P(StoreKinds, GetMissingReturnsNullopt) {
  EXPECT_FALSE(store_->get("nope").has_value());
  EXPECT_FALSE(store_->contains("nope"));
}

TEST_P(StoreKinds, PutThenGet) {
  store_->put("k", blob_of(42), 0);
  const auto v = store_->get("k");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(value_of(v->value), 42u);
  EXPECT_EQ(v->version, 1u);
  EXPECT_TRUE(store_->contains("k"));
}

TEST_P(StoreKinds, VersionsIncrease) {
  store_->put("k", blob_of(1), 0);
  store_->put("k", blob_of(2), 0);
  const auto v = store_->get("k");
  EXPECT_EQ(v->version, 2u);
  EXPECT_EQ(value_of(v->value), 2u);
}

TEST_P(StoreKinds, EraseRemoves) {
  store_->put("k", blob_of(1), 0);
  store_->erase("k");
  EXPECT_FALSE(store_->contains("k"));
}

TEST_P(StoreKinds, UpdateAppliesFunction) {
  store_->put("k", blob_of(10), 0);
  store_->update("k", [](const Blob* current) {
    return blob_of(value_of(*current) + 5);
  });
  EXPECT_EQ(value_of(store_->get("k")->value), 15u);
}

TEST_P(StoreKinds, UpdateCreatesMissingKey) {
  store_->update("fresh", [](const Blob* current) {
    EXPECT_EQ(current, nullptr);
    return blob_of(7);
  });
  EXPECT_EQ(value_of(store_->get("fresh")->value), 7u);
}

TEST_P(StoreKinds, StatsCountOperations) {
  store_->put("k", blob_of(1), 0);
  (void)store_->get("k");
  (void)store_->get("k");
  const auto s = store_->stats();
  EXPECT_GE(s.reads, 2u);
  EXPECT_GE(s.writes, 1u);
}

TEST_P(StoreKinds, IndependentKeys) {
  store_->put("a", blob_of(1), 0);
  store_->put("b", blob_of(2), 0);
  EXPECT_EQ(value_of(store_->get("a")->value), 1u);
  EXPECT_EQ(value_of(store_->get("b")->value), 2u);
}

INSTANTIATE_TEST_SUITE_P(Kinds, StoreKinds,
                         ::testing::Values("strong", "eventual"));

TEST(StoreFactory, RejectsUnknownKind) {
  EXPECT_THROW(make_store("mysql"), Error);
}

// --- Consistency semantics under real concurrency ---------------------------

TEST(StrongStore, ConcurrentUpdatesNeverLost) {
  StrongStore store;
  store.put("counter", blob_of(0), 0);
  constexpr int kThreads = 8;
  constexpr int kIncrements = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store] {
      for (int i = 0; i < kIncrements; ++i) {
        store.update("counter", [](const Blob* current) {
          return blob_of(value_of(*current) + 1);
        });
      }
    });
  }
  for (auto& t : threads) t.join();
  // Serializable: every increment is applied exactly once.
  EXPECT_EQ(value_of(store.get("counter")->value),
            static_cast<std::uint64_t>(kThreads * kIncrements));
  EXPECT_EQ(store.stats().lost_updates, 0u);
}

TEST(EventualStore, ConcurrentUpdatesCanBeLost) {
  EventualStore store;
  store.put("counter", blob_of(0), 0);
  constexpr int kThreads = 8;
  constexpr int kIncrements = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store] {
      for (int i = 0; i < kIncrements; ++i) {
        // Manual read-modify-write with a widened race window: this is what
        // update() does, made reliably racy on any scheduler.
        const auto current = store.get("counter");
        std::this_thread::yield();
        store.put("counter", blob_of(current ? value_of(current->value) + 1 : 1),
                  current ? current->version : 0);
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto final_value = value_of(store.get("counter")->value);
  const auto expected = static_cast<std::uint64_t>(kThreads * kIncrements);
  // Last-writer-wins: some read-modify-writes raced and were clobbered.
  EXPECT_LE(final_value, expected);
  const auto lost = store.stats().lost_updates;
  // With 8 threads hammering one key, losses actually happen — and every
  // deficit implies at least one detected stale write.
  EXPECT_GT(lost, 0u);
  if (final_value < expected) EXPECT_GE(lost, 1u);
}

TEST(EventualStore, StaleReadVersionCountsAsLostUpdate) {
  EventualStore store;
  store.put("k", blob_of(1), 0);       // version 1
  const auto snapshot = store.get("k");
  store.put("k", blob_of(2), snapshot->version);  // fine: still version 1
  EXPECT_EQ(store.stats().lost_updates, 0u);
  // A writer still holding version 1 now clobbers version 2.
  store.put("k", blob_of(3), snapshot->version);
  EXPECT_EQ(store.stats().lost_updates, 1u);
  EXPECT_EQ(value_of(store.get("k")->value), 3u);  // LWW
}

TEST(EventualStore, BlindWritesNeverCountAsLost) {
  EventualStore store;
  store.put("k", blob_of(1), 0);
  store.put("k", blob_of(2), 0);
  EXPECT_EQ(store.stats().lost_updates, 0u);
}

TEST(StrongStore, StaleReadVersionPutCountsAsLostUpdate) {
  // put() is last-writer-wins on the strong store too — only update() is the
  // serialized read-modify-write. A get→put misuse must be observable, not
  // silently discarded with the read_version argument.
  StrongStore store;
  store.put("k", blob_of(1), 0);  // version 1
  const auto snapshot = store.get("k");
  store.put("k", blob_of(2), snapshot->version);  // fine: still version 1
  EXPECT_EQ(store.stats().lost_updates, 0u);
  // A writer still holding version 1 now clobbers version 2.
  store.put("k", blob_of(3), snapshot->version);
  EXPECT_EQ(store.stats().lost_updates, 1u);
  EXPECT_EQ(value_of(store.get("k")->value), 3u);  // LWW

  // Blind writes and correctly-versioned writes stay clean.
  store.put("k", blob_of(4), 0);
  store.put("k", blob_of(5), store.get("k")->version);
  EXPECT_EQ(store.stats().lost_updates, 1u);
}

TEST(StrongStore, ContentionIsObservable) {
  StrongStore store;
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      while (!go.load()) {
      }
      for (int i = 0; i < 200; ++i) {
        store.update("k", [](const Blob*) { return Blob(); });
      }
    });
  }
  go = true;
  for (auto& t : threads) t.join();
  EXPECT_EQ(store.stats().writes, 800u);
}

// --- Latency presets (§IV-D) -------------------------------------------------

TEST(LatencyModels, MatchPaperMeasurements) {
  EXPECT_NEAR(redis_like_latency().update_s(), 0.87, 1e-9);
  EXPECT_NEAR(mysql_like_latency().update_s(), 1.29, 1e-9);
  // MySQL ≈ 1.5x slower per update transaction.
  EXPECT_NEAR(mysql_like_latency().update_s() / redis_like_latency().update_s(),
              1.48, 0.03);
}

TEST(LatencyModels, DefaultsAttachedToStores) {
  EXPECT_NEAR(EventualStore().latency().update_s(), 0.87, 1e-9);
  EXPECT_NEAR(StrongStore().latency().update_s(), 1.29, 1e-9);
}

TEST(LatencyModels, Overridable) {
  EventualStore store;
  store.set_latency(StoreLatencyModel{.read_s = 0.1, .write_s = 0.2});
  EXPECT_NEAR(store.latency().update_s(), 0.3, 1e-12);
}

}  // namespace
}  // namespace vcdl
