// Replica consensus in front of assimilation — BOINC majority validation.
//
// The grid's default acceptance policy is first-checksum-valid-wins, which a
// byzantine volunteer defeats trivially: its payload is checksum-valid, only
// the parameter *values* are wrong (sim/faults.hpp, AdversaryModel). BOINC's
// answer is computational redundancy: issue each workunit to k clients, hold
// the uploads, and only assimilate once m of them agree. This buffer
// implements that quorum:
//
//   * replicas are grouped into equivalence classes — exact payload-hash
//     classes when tolerance == 0, relative-L2 distance on the *decoded*
//     parameter vectors otherwise (honest replicas of the same unit are never
//     bit-identical here: each trains from whatever published params were
//     current when it started, so real runs need tolerance > 0);
//   * the first class to reach m = min(quorum, k) members is promoted — its
//     first-received replica becomes the canonical result, every replica in a
//     losing class is outvoted (the server feeds those clients to
//     Scheduler::report_invalid, denting their integrity reputation);
//   * when all k replicas arrive without any class reaching m, or the
//     fallback deadline fires first, the buffer falls back to plurality:
//     the largest (earliest on ties) class wins. A wrong plurality winner is
//     still subject to the assimilator's blend outlier guard (blend_outlier).
//
// Counters live under the "consensus.*" taxonomy (consensus_metric_names());
// everything registers lazily so consensus-off runs export byte-identical
// metrics snapshots.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "grid/workunit.hpp"

namespace vcdl {

/// Decodes an uploaded payload to its parameter vector for tolerance-based
/// equivalence (the assimilator's peek_decode: full blobs and ring-hit wire
/// frames decode, ring misses return nullopt and form singleton classes).
using ConsensusDecoder =
    std::function<std::optional<std::vector<float>>(const Blob&)>;

class ConsensusBuffer {
 public:
  struct Config {
    /// Matching replicas required to promote (m); clamped to the unit's
    /// effective replication k, so solo-replication units promote instantly.
    std::size_t quorum = 2;
    /// Equivalence tolerance: 0 compares raw payload bytes (exact hash),
    /// > 0 compares decoded parameter vectors by relative L2 distance.
    double tolerance = 0.0;
    /// Virtual seconds the caller should wait after the first held replica
    /// before flushing the unit (quorum unreachable by deadline).
    SimTime fallback_s = 300.0;
  };

  struct Stats {
    std::uint64_t replicas_held = 0;
    std::uint64_t quorum_promoted = 0;    // units promoted by an m-match
    std::uint64_t fallback_promoted = 0;  // plurality promotions (no quorum)
    std::uint64_t results_outvoted = 0;   // replicas in losing classes
    std::uint64_t replicas_flushed = 0;   // replicas dropped by drain()
  };

  enum class Outcome : std::uint8_t {
    held,      // buffered; quorum not yet decided
    promoted,  // an equivalence class reached m — winner is canonical
    fallback,  // promoted by plurality (all replicas in, no m-agreement)
  };

  struct Submission {
    Outcome outcome = Outcome::held;
    /// Set for promoted/fallback: the canonical result to assimilate.
    std::optional<ResultEnvelope> winner;
    /// Clients whose replicas disagreed with the winning class.
    std::vector<ClientId> outvoted;
    std::size_t agreeing = 0;  // winning-class size (promoted/fallback)
  };

  ConsensusBuffer(Config config, ConsensusDecoder decoder);

  /// Buffers one validated replica. `effective_k` is the total replica count
  /// the scheduler settled on for this unit (adaptive replication may differ
  /// from Workunit::replication). A re-upload from a client already holding
  /// a replica replaces its payload. Never call for a retired unit.
  Submission submit(const Workunit& unit, ClientId client, Blob payload,
                    SimTime received_at, std::size_t effective_k);

  /// Deadline fallback: promotes the unit's plurality class now. Returns
  /// nullopt when nothing is held for the unit.
  std::optional<Submission> flush(WorkunitId unit);

  bool holding(WorkunitId unit) const { return units_.count(unit) > 0; }
  std::size_t held_count(WorkunitId unit) const;
  std::size_t held_units() const { return units_.size(); }
  /// Replicas currently buffered across all units.
  std::size_t held_replicas() const;

  /// Crash path: drops every held replica and reports (unit, holders) so the
  /// caller can reissue them at the scheduler — a lost replica that stayed
  /// accounted as "held" would strand its workunit forever.
  std::vector<std::pair<WorkunitId, std::vector<ClientId>>> drain();

  const Config& config() const { return config_; }
  const Stats& stats() const { return stats_; }

 private:
  struct Replica {
    ClientId client = 0;
    Blob payload;
    SimTime received_at = 0.0;
    std::uint64_t order = 0;      // arrival ordinal (stable tie-breaks)
    std::uint64_t hash = 0;       // payload byte hash (tolerance == 0 mode)
    std::optional<std::vector<float>> decoded;  // tolerance > 0 mode
    std::size_t cls = 0;          // equivalence-class index within the unit
  };

  struct HeldUnit {
    Workunit unit;
    std::size_t effective_k = 1;
    std::vector<Replica> replicas;
    std::size_t classes = 0;
  };

  bool equivalent(const Replica& a, const Replica& b) const;
  void classify(HeldUnit& held, Replica& fresh);
  Submission promote(WorkunitId id, std::size_t winning_class,
                     Outcome outcome);
  /// Largest class, earliest first arrival on ties.
  std::size_t plurality_class(const HeldUnit& held) const;

  Config config_;
  ConsensusDecoder decoder_;
  std::map<WorkunitId, HeldUnit> units_;
  std::uint64_t arrival_counter_ = 0;
  Stats stats_;
};

/// Last-line defense for outliers that survive (or bypass) consensus: true
/// when `update` deviates from `reference` by more than `threshold` in
/// relative L2 (‖u−r‖ / max(‖r‖, ε)). A sign-flipped copy sits at deviation
/// ≈ 2, an honest local-training delta well below 1. Counted under
/// "consensus.blend_rejected" (registered on first call with a positive
/// threshold only). threshold <= 0 disables the guard.
bool blend_outlier(const std::vector<float>& reference,
                   const std::vector<float>& update, double threshold);

/// Every "consensus.<name>" counter the stack can emit, across its three
/// emission sites (ConsensusBuffer, Scheduler adaptive replication, the
/// assimilator's blend guard). The instrumentation-coverage test asserts set
/// equality against the registry after driving each site.
const std::vector<std::string>& consensus_metric_names();

}  // namespace vcdl
