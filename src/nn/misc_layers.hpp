// Structural layers: Flatten, Dropout, and the Residual wrapper.
#pragma once

#include "common/rng.hpp"
#include "nn/layer.hpp"

namespace vcdl {

/// [B, d1, d2, ...] → [B, d1*d2*...].
class Flatten : public Layer {
 public:
  using Layer::forward;
  using Layer::backward;
  Tensor forward(const Tensor& x, ExecContext& ctx, bool training) override;
  Tensor backward(const Tensor& grad_out, ExecContext& ctx) override;
  std::string kind() const override { return "flatten"; }
  void write_spec(BinaryWriter& w) const override;
  std::unique_ptr<Layer> clone() const override;

 private:
  Shape in_shape_;
};

/// Inverted dropout: active only in training mode. The paper's experiments
/// disable dropout (§IV-A); VCDL ships it so users can enable regularization.
class Dropout : public Layer {
 public:
  Dropout(double rate, std::uint64_t seed);
  /// Copies the rate and RNG state (persistent), not the mask (transient).
  Dropout(const Dropout& other);

  using Layer::forward;
  using Layer::backward;
  Tensor forward(const Tensor& x, ExecContext& ctx, bool training) override;
  Tensor backward(const Tensor& grad_out, ExecContext& ctx) override;
  std::size_t cache_bytes() const override {
    return mask_.numel() * sizeof(float);
  }
  std::string kind() const override { return "dropout"; }
  void write_spec(BinaryWriter& w) const override;
  std::unique_ptr<Layer> clone() const override;

  double rate() const { return rate_; }

 private:
  double rate_;
  std::uint64_t seed_;
  Rng rng_;
  Tensor mask_;
  bool used_mask_ = false;
};

/// y = x + F(x) where F is an inner layer stack whose output shape equals its
/// input shape. This is the ResNet-style identity-shortcut block.
class Residual : public Layer {
 public:
  explicit Residual(std::vector<std::unique_ptr<Layer>> inner);
  Residual(const Residual& other);

  using Layer::forward;
  using Layer::backward;
  Tensor forward(const Tensor& x, ExecContext& ctx, bool training) override;
  Tensor backward(const Tensor& grad_out, ExecContext& ctx) override;
  std::vector<Tensor*> params() override;
  std::vector<Tensor*> grads() override;
  std::size_t cache_bytes() const override;
  std::string kind() const override { return "residual"; }
  void write_spec(BinaryWriter& w) const override;
  std::unique_ptr<Layer> clone() const override;

  const std::vector<std::unique_ptr<Layer>>& inner() const { return inner_; }

 private:
  std::vector<std::unique_ptr<Layer>> inner_;
};

}  // namespace vcdl
