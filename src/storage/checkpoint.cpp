#include "storage/checkpoint.hpp"

#include "common/error.hpp"

namespace vcdl {

Checkpointer::Checkpointer(KvStore& store, std::string key, Republish republish)
    : store_(store), keys_{std::move(key)} {
  VCDL_CHECK(!keys_.front().empty(), "Checkpointer: empty key");
  VCDL_CHECK(republish != nullptr, "Checkpointer: null republish hook");
  republish_ = [single = std::move(republish)](const std::vector<Blob>& blobs) {
    single(blobs.front());
  };
}

Checkpointer::Checkpointer(KvStore& store, std::vector<std::string> keys,
                           RepublishAll republish)
    : store_(store), keys_(std::move(keys)), republish_(std::move(republish)) {
  VCDL_CHECK(!keys_.empty(), "Checkpointer: need >= 1 key");
  for (const auto& key : keys_) {
    VCDL_CHECK(!key.empty(), "Checkpointer: empty key");
  }
  VCDL_CHECK(republish_ != nullptr, "Checkpointer: null republish hook");
}

void Checkpointer::set_state_hooks(CaptureState capture, RestoreState restore) {
  VCDL_CHECK((capture != nullptr) == (restore != nullptr),
             "Checkpointer: state hooks must be set as a pair");
  capture_state_ = std::move(capture);
  restore_state_ = std::move(restore);
}

bool Checkpointer::snapshot() {
  std::vector<Blob> blobs;
  blobs.reserve(keys_.size());
  for (const auto& key : keys_) {
    const auto current = store_.get(key);
    if (!current.has_value()) return false;
    blobs.push_back(current->value);
  }
  snap_ = std::move(blobs);
  if (capture_state_) state_snap_ = capture_state_();
  ++stats_.snapshots;
  return true;
}

bool Checkpointer::restore() {
  if (!snap_.has_value()) return false;
  republish_(*snap_);
  if (restore_state_ && state_snap_.has_value()) restore_state_(*state_snap_);
  ++stats_.restores;
  return true;
}

}  // namespace vcdl
