// Move-only callable with inline small-buffer storage.
//
// std::function's small-object buffer on libstdc++ is 16 bytes, so the
// simulator's typical event closure (a this-pointer plus two or three ids)
// is heap-allocated — one extra cold cache line per event at fleet scale,
// plus a malloc/free pair per event. SmallFn<N> raises the inline threshold
// so those closures live inside the engine's slot slab (the memory the event
// path already touches); larger captures (payload blobs, whole workunits)
// transparently fall back to the heap like std::function would.
//
// Dispatch goes through a single pointer to a per-type static ops table
// rather than three inline function pointers: the table is shared across
// every instance of the same closure type (a handful of hot, L1-resident
// lines for the whole simulation), and the object itself stays at
// buffer + 8 bytes — small enough that an engine event slot fits in one
// cache line.
//
// Move-only (no copy), void() signature only — exactly what the event queue
// needs, nothing more.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace vcdl {

template <std::size_t N>
class SmallFn {
 public:
  SmallFn() = default;
  SmallFn(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      // Heap fallback: the buffer holds just the pointer.
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &kHeapOps<Fn>;
    }
  }

  SmallFn(SmallFn&& other) noexcept { move_from(other); }

  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  SmallFn& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { reset(); }

  void operator()() { ops_->call(buf_); }

  explicit operator bool() const { return ops_ != nullptr; }
  friend bool operator==(const SmallFn& f, std::nullptr_t) { return !f; }
  friend bool operator!=(const SmallFn& f, std::nullptr_t) {
    return static_cast<bool>(f);
  }

 private:
  struct Ops {
    void (*call)(void*);
    void (*relocate)(void*, void*);  // move-construct dst, kill src
    void (*destroy)(void*);
  };

  // The buffer is pointer-aligned, not max_align_t-aligned: event closures
  // capture pointers, ids and doubles. The rare over-aligned functor simply
  // takes the heap fallback (fits_inline rejects it).
  template <typename Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= N && alignof(Fn) <= alignof(void*) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  static constexpr Ops kInlineOps = {
      [](void* p) { (*std::launder(reinterpret_cast<Fn*>(p)))(); },
      [](void* dst, void* src) {
        Fn* s = std::launder(reinterpret_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*s));
        s->~Fn();
      },
      [](void* p) { std::launder(reinterpret_cast<Fn*>(p))->~Fn(); }};

  template <typename Fn>
  static constexpr Ops kHeapOps = {
      [](void* p) { (**std::launder(reinterpret_cast<Fn**>(p)))(); },
      [](void* dst, void* src) {
        ::new (dst) Fn*(*std::launder(reinterpret_cast<Fn**>(src)));
      },
      [](void* p) { delete *std::launder(reinterpret_cast<Fn**>(p)); }};

  void move_from(SmallFn& other) noexcept {
    if (other.ops_ != nullptr) {
      other.ops_->relocate(buf_, other.buf_);
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  alignas(void*) unsigned char buf_[N];
  const Ops* ops_ = nullptr;
};

}  // namespace vcdl
