file(REMOVE_RECURSE
  "CMakeFiles/volunteer_churn.dir/volunteer_churn.cpp.o"
  "CMakeFiles/volunteer_churn.dir/volunteer_churn.cpp.o.d"
  "volunteer_churn"
  "volunteer_churn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/volunteer_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
