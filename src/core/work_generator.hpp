// Work generator — §III-A.
//
// Splits one DL training job into data-parallel subtasks: publishes the
// static artifacts (architecture file, sticky data shards) once, then at each
// epoch creates one workunit per shard referencing the current parameter
// file. "The design of the work generator automatically handles the details
// of converting a training job into a data parallel training job."
#pragma once

#include <string>

#include "grid/file_server.hpp"
#include "grid/scheduler.hpp"
#include "sim/trace.hpp"

namespace vcdl {

class WorkGenerator {
 public:
  struct Options {
    std::size_t num_shards = 50;
    SimTime subtask_timeout_s = 300.0;
    std::size_t replication = 1;
    std::string arch_file = "arch";
    std::string params_file = "params";
    std::string shard_prefix = "shard/";
    /// Parameter-plane shard count (core/shard_plan.hpp): at > 1 each
    /// workunit references every per-shard parameter file
    /// ("<params_file>/<i>") in one parallel fetch group. 1 = the single
    /// monolithic parameter ref.
    std::size_t param_shards = 1;
  };

  WorkGenerator(Scheduler& scheduler, FileServer& files, TraceLog& trace,
                SimEngine& engine, Options options);

  /// Publishes the architecture file and the (sticky, wire-compressed)
  /// shard files. Call once before the first epoch.
  void publish_static(Blob arch, std::vector<Blob> shard_blobs);

  /// Creates the epoch's workunits (one per shard). Epochs are 1-based.
  void generate_epoch(std::size_t epoch);

  std::string shard_file(std::size_t shard) const {
    return options_.shard_prefix + std::to_string(shard);
  }
  /// Parameter file for one plane shard ("params" at param_shards = 1,
  /// "params/<i>" otherwise — matching ShardPlan::shard_key).
  std::string param_file(std::size_t shard) const;
  std::size_t epochs_generated() const { return epochs_generated_; }

 private:
  Scheduler& scheduler_;
  FileServer& files_;
  TraceLog& trace_;
  SimEngine& engine_;
  Options options_;
  WorkunitId next_id_ = 1;
  std::size_t epochs_generated_ = 0;
};

}  // namespace vcdl
