// Execution context for the training hot path.
//
// An ExecContext bundles the two resources the compute-heavy layers share: a
// worker pool that the GEMM and convolution kernels split work over, and a
// scratch arena of reusable tensors that removes per-step allocation churn
// from forward/backward. One context is owned per training driver — a grid
// client, an assimilator's validator, a bench loop — and threaded by
// reference through Model::forward/backward into every Layer. Layers never
// own pools or scratch, so model clones stay cheap and the degree of
// parallelism remains a per-driver runtime decision.
//
// Determinism contract (see DESIGN.md "Execution & threading model"):
//   * no pool, or a 1-thread pool ⇒ bit-identical to the serial kernels;
//   * N workers ⇒ row-split GEMMs and batch-split convolution forwards are
//     still bit-identical (every output element is produced whole by exactly
//     one worker, in the serial arithmetic order); only Conv2D's per-chunk
//     weight-gradient reduction regroups float sums, so training losses match
//     within tolerance rather than bitwise.
//   * the SIMD tier is NOT part of the contract's state: every vector GEMM
//     tier preserves the scalar reference's per-element accumulation order
//     and never contracts mul+add into FMA, so scalar/AVX2/NEON produce
//     bitwise-equal results (enforced by tests/test_kernels.cpp).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "tensor/tensor.hpp"

namespace vcdl {

class ThreadPool;

/// Slot-addressed pool of reusable scratch tensors. `get` hands out the same
/// storage every step, resizing in place (which reallocates only on growth),
/// so steady-state training does no scratch allocation at all.
///
/// Not thread-safe: borrow every buffer on the coordinating thread *before*
/// fanning work out to a pool; the returned references stay valid until
/// release() (slots are held behind stable pointers). Each slot is a Tensor,
/// whose backing store is 64-byte aligned (CacheAlignedAllocator), so two
/// adjacent slots used as per-chunk accumulators can never false-share a
/// cache line.
class ScratchArena {
 public:
  /// Borrows slot `slot` resized to `shape`. Contents are unspecified.
  Tensor& get(std::size_t slot, const Shape& shape);

  std::size_t slots() const { return slots_.size(); }
  /// Total bytes currently held across all slots.
  std::size_t bytes() const;
  /// Drops all slots (e.g. a simulated preemption wiping local memory).
  void release();

 private:
  std::vector<std::unique_ptr<Tensor>> slots_;
};

struct ExecContext {
  ThreadPool* pool = nullptr;  // nullptr ⇒ single-threaded
  ScratchArena arena;

  /// Worker count layers should plan per-worker scratch for (>= 1).
  std::size_t workers() const;
};

/// Shared fallback context (no pool) used by the convenience
/// Layer/Model::forward overloads; thread-local so concurrent callers —
/// e.g. store benches driving models from real threads — never race on it.
ExecContext& serial_exec_context();

}  // namespace vcdl
