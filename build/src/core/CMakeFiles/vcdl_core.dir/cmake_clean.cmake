file(REMOVE_RECURSE
  "CMakeFiles/vcdl_core.dir/alpha_schedule.cpp.o"
  "CMakeFiles/vcdl_core.dir/alpha_schedule.cpp.o.d"
  "CMakeFiles/vcdl_core.dir/baselines/dcasgd.cpp.o"
  "CMakeFiles/vcdl_core.dir/baselines/dcasgd.cpp.o.d"
  "CMakeFiles/vcdl_core.dir/baselines/downpour.cpp.o"
  "CMakeFiles/vcdl_core.dir/baselines/downpour.cpp.o.d"
  "CMakeFiles/vcdl_core.dir/baselines/easgd.cpp.o"
  "CMakeFiles/vcdl_core.dir/baselines/easgd.cpp.o.d"
  "CMakeFiles/vcdl_core.dir/baselines/serial.cpp.o"
  "CMakeFiles/vcdl_core.dir/baselines/serial.cpp.o.d"
  "CMakeFiles/vcdl_core.dir/eval.cpp.o"
  "CMakeFiles/vcdl_core.dir/eval.cpp.o.d"
  "CMakeFiles/vcdl_core.dir/job.cpp.o"
  "CMakeFiles/vcdl_core.dir/job.cpp.o.d"
  "CMakeFiles/vcdl_core.dir/param_server.cpp.o"
  "CMakeFiles/vcdl_core.dir/param_server.cpp.o.d"
  "CMakeFiles/vcdl_core.dir/report.cpp.o"
  "CMakeFiles/vcdl_core.dir/report.cpp.o.d"
  "CMakeFiles/vcdl_core.dir/trainer.cpp.o"
  "CMakeFiles/vcdl_core.dir/trainer.cpp.o.d"
  "CMakeFiles/vcdl_core.dir/vcasgd.cpp.o"
  "CMakeFiles/vcdl_core.dir/vcasgd.cpp.o.d"
  "CMakeFiles/vcdl_core.dir/work_generator.cpp.o"
  "CMakeFiles/vcdl_core.dir/work_generator.cpp.o.d"
  "libvcdl_core.a"
  "libvcdl_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcdl_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
