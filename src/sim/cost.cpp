#include "sim/cost.hpp"

namespace vcdl {

void CostLedger::add_usage(const InstanceType& instance, SimTime seconds) {
  VCDL_CHECK(seconds >= 0.0, "CostLedger: negative usage");
  for (auto& u : usage_) {
    if (u.type.name == instance.name) {
      u.seconds += seconds;
      return;
    }
  }
  usage_.push_back(Usage{instance, seconds});
}

double CostLedger::total_instance_hours() const {
  double h = 0.0;
  for (const auto& u : usage_) h += u.seconds / 3600.0;
  return h;
}

double CostLedger::standard_cost_usd() const {
  double usd = 0.0;
  for (const auto& u : usage_) usd += u.type.hourly_usd * u.seconds / 3600.0;
  return usd;
}

double CostLedger::preemptible_cost_usd() const {
  double usd = 0.0;
  for (const auto& u : usage_) {
    usd += u.type.preemptible_hourly_usd() * u.seconds / 3600.0;
  }
  return usd;
}

double CostLedger::savings_fraction() const {
  const double std_cost = standard_cost_usd();
  if (std_cost <= 0.0) return 0.0;
  return 1.0 - preemptible_cost_usd() / std_cost;
}

double CostLedger::fleet_hourly_standard(const std::vector<InstanceType>& fleet) {
  double usd = 0.0;
  for (const auto& t : fleet) usd += t.hourly_usd;
  return usd;
}

double CostLedger::fleet_hourly_preemptible(
    const std::vector<InstanceType>& fleet) {
  double usd = 0.0;
  for (const auto& t : fleet) usd += t.preemptible_hourly_usd();
  return usd;
}

}  // namespace vcdl
