#include "sim/engine.hpp"

#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sim/resource.hpp"

namespace vcdl {
namespace {

TEST(SimEngine, RunsEventsInTimeOrder) {
  SimEngine engine;
  std::vector<int> order;
  engine.schedule(3.0, [&] { order.push_back(3); });
  engine.schedule(1.0, [&] { order.push_back(1); });
  engine.schedule(2.0, [&] { order.push_back(2); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(engine.now(), 3.0);
}

TEST(SimEngine, FifoWithinSameTimestamp) {
  SimEngine engine;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    engine.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  engine.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SimEngine, EventsCanScheduleEvents) {
  SimEngine engine;
  std::vector<double> times;
  engine.schedule(1.0, [&] {
    times.push_back(engine.now());
    engine.schedule(2.0, [&] { times.push_back(engine.now()); });
  });
  engine.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 3.0);
}

TEST(SimEngine, CancelPreventsExecution) {
  SimEngine engine;
  bool ran = false;
  const EventId id = engine.schedule(1.0, [&] { ran = true; });
  EXPECT_TRUE(engine.cancel(id));
  EXPECT_FALSE(engine.cancel(id));  // second cancel is a no-op
  engine.run();
  EXPECT_FALSE(ran);
}

TEST(SimEngine, CancelAfterFireReturnsFalse) {
  SimEngine engine;
  const EventId id = engine.schedule(1.0, [] {});
  engine.run();
  EXPECT_FALSE(engine.cancel(id));
}

TEST(SimEngine, RunUntilStopsAtBoundary) {
  SimEngine engine;
  std::vector<double> fired;
  engine.schedule(1.0, [&] { fired.push_back(1.0); });
  engine.schedule(5.0, [&] { fired.push_back(5.0); });
  engine.run_until(3.0);
  EXPECT_EQ(fired, (std::vector<double>{1.0}));
  EXPECT_DOUBLE_EQ(engine.now(), 3.0);
  engine.run();
  EXPECT_EQ(fired, (std::vector<double>{1.0, 5.0}));
}

TEST(SimEngine, RunUntilInclusive) {
  SimEngine engine;
  bool ran = false;
  engine.schedule(2.0, [&] { ran = true; });
  engine.run_until(2.0);
  EXPECT_TRUE(ran);
}

TEST(SimEngine, StepExecutesOne) {
  SimEngine engine;
  int count = 0;
  engine.schedule(1.0, [&] { ++count; });
  engine.schedule(2.0, [&] { ++count; });
  EXPECT_TRUE(engine.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(engine.step());
  EXPECT_FALSE(engine.step());
  EXPECT_EQ(count, 2);
}

TEST(SimEngine, NegativeDelayThrows) {
  SimEngine engine;
  EXPECT_THROW(engine.schedule(-1.0, [] {}), Error);
}

TEST(SimEngine, ScheduleAtPastThrows) {
  SimEngine engine;
  engine.schedule(5.0, [] {});
  engine.run();
  EXPECT_THROW(engine.schedule_at(1.0, [] {}), Error);
}

TEST(SimEngine, PendingAndExecutedCounts) {
  SimEngine engine;
  const EventId a = engine.schedule(1.0, [] {});
  engine.schedule(2.0, [] {});
  EXPECT_EQ(engine.pending(), 2u);
  engine.cancel(a);
  EXPECT_EQ(engine.pending(), 1u);
  engine.run();
  EXPECT_EQ(engine.pending(), 0u);
  EXPECT_EQ(engine.executed(), 1u);
}

TEST(SimEngine, ManyEventsStressOrdering) {
  SimEngine engine;
  double last = -1.0;
  bool monotone = true;
  Rng rng(9);
  for (int i = 0; i < 5000; ++i) {
    engine.schedule(rng.uniform(0.0, 100.0), [&] {
      if (engine.now() < last) monotone = false;
      last = engine.now();
    });
  }
  engine.run();
  EXPECT_TRUE(monotone);
  EXPECT_EQ(engine.executed(), 5000u);
}

TEST(SimMutex, ImmediateGrantWhenFree) {
  SimMutex m;
  bool entered = false;
  m.acquire([&] { entered = true; });
  EXPECT_TRUE(entered);
  EXPECT_TRUE(m.held());
  m.release();
  EXPECT_FALSE(m.held());
}

TEST(SimMutex, QueuesWaitersFifo) {
  SimMutex m;
  std::vector<int> order;
  m.acquire([&] { order.push_back(0); });
  m.acquire([&] { order.push_back(1); });
  m.acquire([&] { order.push_back(2); });
  EXPECT_EQ(order, (std::vector<int>{0}));
  EXPECT_EQ(m.waiting(), 2u);
  EXPECT_EQ(m.contended(), 2u);
  m.release();  // grants 1
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
  m.release();  // grants 2
  m.release();  // final
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_FALSE(m.held());
}

TEST(SimMutex, ReleaseWithoutHolderThrows) {
  SimMutex m;
  EXPECT_THROW(m.release(), Error);
}

}  // namespace
}  // namespace vcdl
