// RAII span timers over the registry's time source (vcdl::obs).
//
// A SpanTimer reads Registry::now() at construction and records the elapsed
// time into a duration histogram at destruction. Under a simulation run the
// registry carries the engine's virtual clock (ScopedTimeSource installed by
// VcTrainer::run()), so spans around *real* compute inside a DES event —
// GEMM kernels, im2col, validation forwards — record zero-duration samples
// deterministically: the span *counts* stay exact and replayable while the
// durations defer to the DES's own latency models. Outside a simulation
// (benches, production paths) spans record wall time.
//
// Usage — cache the histogram handle once, time each call:
//
//   static obs::Histogram& h =
//       obs::registry().histogram("exec.gemm_s", {0.0, 0.05, 50});
//   obs::SpanTimer span(h);
#pragma once

#include "obs/metrics.hpp"

namespace vcdl::obs {

class SpanTimer {
 public:
  explicit SpanTimer(Histogram& sink, Registry& reg = registry())
      : sink_(sink), registry_(reg), start_(reg.now()) {}
  ~SpanTimer() { sink_.observe(registry_.now() - start_); }

  SpanTimer(const SpanTimer&) = delete;
  SpanTimer& operator=(const SpanTimer&) = delete;

  /// Seconds elapsed so far (same clock the destructor records with).
  double elapsed() const { return registry_.now() - start_; }

 private:
  Histogram& sink_;
  Registry& registry_;
  double start_;
};

}  // namespace vcdl::obs
