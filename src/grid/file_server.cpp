#include "grid/file_server.hpp"

#include "common/compress.hpp"
#include "common/error.hpp"

namespace vcdl {

void FileServer::publish(const std::string& name, Blob payload,
                         bool compress_on_wire) {
  auto& e = files_[name];
  e.wire_size = compress_on_wire ? compressed_size(payload.view()) : payload.size();
  e.compressed = compress_on_wire;
  e.payload = std::move(payload);
  ++e.version;
  ++stats_.publishes;
}

bool FileServer::has(const std::string& name) const {
  return files_.count(name) > 0;
}

const FileServer::Entry& FileServer::entry(const std::string& name) const {
  const auto it = files_.find(name);
  if (it == files_.end()) {
    throw NotFound("FileServer: no file named '" + name + "'");
  }
  return it->second;
}

std::uint64_t FileServer::version(const std::string& name) const {
  return entry(name).version;
}

std::size_t FileServer::raw_size(const std::string& name) const {
  return entry(name).payload.size();
}

std::size_t FileServer::wire_size(const std::string& name) const {
  return entry(name).wire_size;
}

const Blob& FileServer::fetch(const std::string& name) {
  const Entry& e = entry(name);
  ++stats_.fetches;
  stats_.bytes_raw += e.payload.size();
  stats_.bytes_wire += e.wire_size;
  return e.payload;
}

}  // namespace vcdl
