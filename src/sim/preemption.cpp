#include "sim/preemption.hpp"

#include <cmath>
#include <limits>

namespace vcdl {

SimTime PreemptionProcess::sample_next(Rng& rng) const {
  if (interruptions_per_hour <= 0.0) {
    return std::numeric_limits<SimTime>::infinity();
  }
  return rng.exponential(interruptions_per_hour / 3600.0);
}

double PreemptionProcess::interruption_probability(double hours) const {
  if (interruptions_per_hour <= 0.0) return 0.0;
  return 1.0 - std::exp(-interruptions_per_hour * hours);
}

double BinomialDelayModel::slots() const {
  VCDL_CHECK(clients > 0 && subtasks_per_client > 0,
             "BinomialDelayModel: zero clients or slots");
  return static_cast<double>(total_subtasks) /
         (static_cast<double>(clients) *
          static_cast<double>(subtasks_per_client));
}

double BinomialDelayModel::expected_timeouts() const {
  return slots() * termination_probability;
}

SimTime BinomialDelayModel::base_time() const { return slots() * avg_exec_s; }

SimTime BinomialDelayModel::expected_increase() const {
  return expected_timeouts() * timeout_s;
}

SimTime BinomialDelayModel::expected_total() const {
  return base_time() + expected_increase();
}

}  // namespace vcdl
