file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_vs_serial.dir/bench_fig6_vs_serial.cpp.o"
  "CMakeFiles/bench_fig6_vs_serial.dir/bench_fig6_vs_serial.cpp.o.d"
  "bench_fig6_vs_serial"
  "bench_fig6_vs_serial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_vs_serial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
