#include "core/vcasgd.hpp"

#include <cmath>

#include "common/error.hpp"
#include "tensor/ops.hpp"

namespace vcdl {

void vcasgd_update(std::span<float> server, std::span<const float> client,
                   double alpha) {
  VCDL_CHECK(server.size() == client.size(),
             "vcasgd_update: parameter size mismatch");
  VCDL_CHECK(alpha >= 0.0 && alpha <= 1.0, "vcasgd_update: alpha out of [0,1]");
  ops::blend(static_cast<float>(alpha), server, client, server);
}

std::vector<float> vcasgd_closed_form(
    std::span<const float> server_prev,
    const std::vector<std::vector<float>>& client_updates, double alpha) {
  const std::size_t dim = server_prev.size();
  const auto n = client_updates.size();
  std::vector<double> acc(dim);
  const double a_pow_n = std::pow(alpha, static_cast<double>(n));
  for (std::size_t i = 0; i < dim; ++i) {
    acc[i] = a_pow_n * static_cast<double>(server_prev[i]);
  }
  // Note: the paper's Eq. (2) omits the per-term α^{n−j} factors that the
  // recursion in Eq. (1) actually produces; this is the algebraically
  // correct expansion (tests verify it against the iterated Eq. (1)).
  for (std::size_t j = 0; j < n; ++j) {
    VCDL_CHECK(client_updates[j].size() == dim,
               "vcasgd_closed_form: update size mismatch");
    const double w =
        (1.0 - alpha) * std::pow(alpha, static_cast<double>(n - 1 - j));
    for (std::size_t i = 0; i < dim; ++i) {
      acc[i] += w * static_cast<double>(client_updates[j][i]);
    }
  }
  std::vector<float> out(dim);
  for (std::size_t i = 0; i < dim; ++i) out[i] = static_cast<float>(acc[i]);
  return out;
}

}  // namespace vcdl
