// Key-value parameter store interface (§III-D, §IV-D).
//
// The paper stores the shared server parameter copy in a database so that
// multiple parameter servers can update it concurrently, and compares Redis
// (main-memory, eventual consistency, 0.87 s/update) against MySQL (strong
// consistency, 1.29 s/update). VCDL's stores are real thread-safe in-memory
// maps with the two consistency semantics:
//
//  * StrongStore  — update() is an atomic read-modify-write under a per-key
//    lock; concurrent updaters serialize, nothing is ever lost.
//  * EventualStore — readers get a (possibly stale) versioned snapshot and
//    writers blindly last-write-wins; a read-modify-write that raced another
//    writer silently discards that writer's contribution. The store counts
//    these lost updates so experiments can report them.
//
// Each store also carries a *latency model*: the simulated per-operation
// cost charged by the DES (calibrated to the paper's measurements). The
// in-memory operation itself is fast; the model is what an experiment bills.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "common/blob.hpp"

namespace vcdl {

struct VersionedValue {
  Blob value;
  std::uint64_t version = 0;
};

struct StoreStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  /// Writes (put with a non-zero read_version) that clobbered a version the
  /// writer had not seen — the racing writer's update is lost. Both stores
  /// count this: on the eventual store it is the accepted §III-D race, on
  /// the strong store it flags a get→put misuse of an API whose atomic path
  /// is update().
  std::uint64_t lost_updates = 0;
  /// StrongStore: lock acquisitions that had to wait.
  std::uint64_t contended_updates = 0;
};

/// Relaxed-atomic StoreStats accumulator (the src/obs counter pattern):
/// stores bump these on their hot paths without touching any mutex — each
/// counter is an independent monotonic event count, so per-counter atomicity
/// is all a stats() snapshot needs.
struct AtomicStoreStats {
  std::atomic<std::uint64_t> reads{0};
  std::atomic<std::uint64_t> writes{0};
  std::atomic<std::uint64_t> lost_updates{0};
  std::atomic<std::uint64_t> contended_updates{0};

  StoreStats snapshot() const {
    StoreStats s;
    s.reads = reads.load(std::memory_order_relaxed);
    s.writes = writes.load(std::memory_order_relaxed);
    s.lost_updates = lost_updates.load(std::memory_order_relaxed);
    s.contended_updates = contended_updates.load(std::memory_order_relaxed);
    return s;
  }
};

/// Simulated per-operation latency (seconds). The defaults reproduce §IV-D:
/// one parameter *update* (read + blend + write) costs 0.87 s on Redis and
/// 1.29 s on MySQL; VCDL splits that into read/write halves.
struct StoreLatencyModel {
  double read_s = 0.0;
  double write_s = 0.0;
  double update_s() const { return read_s + write_s; }
};

class KvStore {
 public:
  virtual ~KvStore() = default;

  virtual std::string kind() const = 0;

  /// Versioned read; nullopt when the key does not exist.
  virtual std::optional<VersionedValue> get(const std::string& key) = 0;

  /// Writes `value`. `read_version` is the version the writer based its
  /// value on (0 = blind write); the store uses it to detect lost updates.
  /// Returns the new version.
  virtual std::uint64_t put(const std::string& key, Blob value,
                            std::uint64_t read_version = 0) = 0;

  /// Atomic read-modify-write; `fn` receives the current value (nullptr when
  /// missing) and returns the new one. On a strong store this serializes; on
  /// an eventual store it deliberately decomposes into get + put and is NOT
  /// atomic under concurrency.
  virtual std::uint64_t update(const std::string& key,
                               const std::function<Blob(const Blob*)>& fn) = 0;

  virtual bool contains(const std::string& key) = 0;
  virtual void erase(const std::string& key) = 0;

  virtual StoreStats stats() const = 0;

  const StoreLatencyModel& latency() const { return latency_; }
  void set_latency(StoreLatencyModel model) { latency_ = model; }

 protected:
  StoreLatencyModel latency_;
};

/// Latency presets from the paper's measurements (§IV-D).
StoreLatencyModel redis_like_latency();   // 0.87 s per update
StoreLatencyModel mysql_like_latency();   // 1.29 s per update

/// Factory: "strong" (MySQL-like) or "eventual" (Redis-like).
std::unique_ptr<KvStore> make_store(const std::string& kind);

}  // namespace vcdl
