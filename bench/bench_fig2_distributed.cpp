// Figure 2 — effect of distributed training at fixed α = 0.95.
//
// Runs the paper's four configurations (P1C3T2, P1C3T8, P3C3T8, P5C5T2) and
// prints the accuracy-vs-cumulative-time series of each. Expected shape
// (§IV-B): all configurations converge toward the same accuracy; they differ
// in training time; P5C5T2 is the fastest of the four.
#include <algorithm>
#include <iostream>
#include <sstream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace vcdl;
  const Config cfg = Config::from_args(argc, argv);
  bench::print_header("Figure 2 — accuracy vs cumulative training time",
                      "Fig. 2 (P1C3T2, P1C3T8, P3C3T8, P5C5T2; alpha = 0.95)");

  struct Shape {
    std::size_t p, c, t;
  };
  const Shape shapes[] = {{1, 3, 2}, {1, 3, 8}, {3, 3, 8}, {5, 5, 2}};

  Table table = bench::epoch_series_table();
  std::vector<TrainResult> results;
  for (const Shape& s : shapes) {
    ExperimentSpec spec = bench::base_spec(cfg);
    spec.parameter_servers = s.p;
    spec.clients = s.c;
    spec.tasks_per_client = s.t;
    spec.alpha = "0.95";
    const TrainResult r = run_experiment(spec);
    bench::print_run_summary(r);
    bench::add_epoch_rows(table, spec.label(), r);
    results.push_back(r);
  }
  std::cout << "\n";
  table.print(std::cout);

  // Shape check: time-to-final-epoch ordering, equal accuracy band.
  std::cout << "\nTime to " << results[0].epochs.size() << " epochs:\n";
  for (const auto& r : results) {
    std::cout << "  " << r.spec.label() << ": "
              << Table::fmt(r.totals.duration_s / 3600.0, 2) << " h (final acc "
              << Table::fmt(r.final_epoch().mean_subtask_acc, 3) << ")\n";
  }

  // Wire codec (docs/SIMULATION.md §4b): the same P3C3T8 run with the
  // lossless delta codec — parameter pulls billed as version deltas instead
  // of full blobs.
  std::cout << "\nParameter-pull traffic, full blobs vs lossless deltas"
               " (P3C3T8):\n";
  Table codec_tbl({"codec", "total wire MB", "param pull MB", "full-equiv MB",
                   "pull savings", "delta pulls", "final acc"});
  for (const char* mode : {"full", "delta"}) {
    ExperimentSpec spec = bench::base_spec(cfg);
    spec.parameter_servers = 3;
    spec.clients = 3;
    spec.tasks_per_client = 8;
    spec.alpha = "0.95";
    spec.wire_codec = mode;
    const TrainResult r = run_experiment(spec);
    const double mb = 1024.0 * 1024.0;
    const bool has_split = r.totals.param_bytes_full > 0;
    const double wire = static_cast<double>(r.totals.param_bytes_wire);
    const double full = static_cast<double>(r.totals.param_bytes_full);
    codec_tbl.add_row(
        {mode,
         Table::fmt(static_cast<double>(r.totals.bytes_wire) / mb, 2),
         has_split ? Table::fmt(wire / mb, 2) : "-",
         has_split ? Table::fmt(full / mb, 2) : "-",
         has_split ? Table::fmt(full / std::max(wire, 1.0), 1) + "x" : "-",
         Table::fmt(r.totals.delta_pulls),
         Table::fmt(r.final_epoch().mean_subtask_acc, 3)});
  }
  codec_tbl.print(std::cout);

  // Sharded parameter plane (core/shard_plan.hpp): the same P3C3T8 delta run
  // with the parameter vector sliced over {1, 2, 4, 8} per-shard planes —
  // shard files pulled in parallel, uploads as per-shard frame bundles.
  // Results land in BENCH_shard.json alongside bench_fig3's sweep.
  std::cout << "\nSharded parameter plane sweep (P3C3T8, delta codec):\n";
  Table shard_tbl({"shards", "hours", "final acc", "param pull MB",
                   "full-equiv MB", "delta pulls"});
  std::ostringstream rows;
  rows << "[";
  for (const std::size_t shards : {1, 2, 4, 8}) {
    ExperimentSpec spec = bench::base_spec(cfg);
    spec.parameter_servers = 3;
    spec.clients = 3;
    spec.tasks_per_client = 8;
    spec.alpha = "0.95";
    spec.wire_codec = "delta";
    spec.param_shards = shards;
    const TrainResult r = run_experiment(spec);
    const double mb = 1024.0 * 1024.0;
    shard_tbl.add_row(
        {Table::fmt(shards), Table::fmt(r.totals.duration_s / 3600.0, 2),
         Table::fmt(r.final_epoch().mean_subtask_acc, 3),
         Table::fmt(static_cast<double>(r.totals.param_bytes_wire) / mb, 2),
         Table::fmt(static_cast<double>(r.totals.param_bytes_full) / mb, 2),
         Table::fmt(r.totals.delta_pulls)});
    if (shards != 1) rows << ", ";
    rows << "{\"param_shards\": " << shards << ", \"label\": \""
         << spec.label() << "\", \"wire_codec\": \"delta\", \"hours\": "
         << Table::fmt(r.totals.duration_s / 3600.0, 4)
         << ", \"final_mean_acc\": "
         << Table::fmt(r.final_epoch().mean_subtask_acc, 4)
         << ", \"param_bytes_wire\": " << r.totals.param_bytes_wire
         << ", \"param_bytes_full\": " << r.totals.param_bytes_full
         << ", \"delta_pulls\": " << r.totals.delta_pulls << "}";
  }
  rows << "]";
  shard_tbl.print(std::cout);
  bench::write_shard_json("fig2", rows.str());
  return 0;
}
