// LZ-style byte compression.
//
// The paper relies on compressed artifacts (.npz data subsets, .h5 parameter
// files) and on BOINC's transparent on-the-wire compression to cut transfer
// time over slow volunteer links. VCDL implements a greedy LZ77 codec with a
// 64 KiB window and 4-byte hash chains — deliberately simple, dependency-free,
// and fast enough to sit on the file-server hot path. Ratio on uint8 image
// shards is comparable to DEFLATE-at-level-1, which is all the transfer-time
// model needs.
#pragma once

#include "common/blob.hpp"

namespace vcdl {

/// Compresses `input`; output begins with a small header recording the
/// uncompressed size. Incompressible input grows by a few bytes at most
/// (stored as literal runs).
Blob compress(std::span<const std::uint8_t> input);
inline Blob compress(const Blob& input) { return compress(input.view()); }

/// Inverse of compress(). Throws CorruptData on malformed input.
Blob decompress(std::span<const std::uint8_t> input);
inline Blob decompress(const Blob& input) { return decompress(input.view()); }

/// Convenience: compressed size in bytes without keeping the output.
std::size_t compressed_size(std::span<const std::uint8_t> input);

}  // namespace vcdl
