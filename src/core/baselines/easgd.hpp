// Asynchronous Elastic Averaging SGD baseline (Zhang et al., NIPS'15) — §II-B.
//
// Every τ local steps a worker and the server exchange an elastic pull:
//   x_i ← x_i − β (x_i − x̃),   x̃ ← x̃ + β (x_i − x̃)
// with moving rate β. The paper treats VC-ASGD with α = 0.999 as the analogue
// of EASGD with moving rate 0.001 (§IV-C); this implementation provides the
// actual rule so that equivalence can be demonstrated. Like Downpour, the
// exchange requires every worker to keep participating — a failed worker
// stalls its share of the elastic averaging, which the fault option shows.
#pragma once

#include "core/job.hpp"

namespace vcdl {

struct EasgdSpec {
  SyntheticSpec data;
  ResNetLiteSpec model;
  std::size_t workers = 4;
  std::size_t tau = 4;          // communication period (local steps)
  double moving_rate = 0.05;    // β
  std::size_t max_epochs = 8;
  std::size_t batch_size = 20;
  double learning_rate = 1e-3;
  std::string optimizer = "adam";  // workers' local optimizer
  int fail_worker = -1;
  std::size_t fail_after_epoch = 2;
  std::uint64_t seed = 7;
};

struct EasgdResult {
  std::vector<EpochStats> epochs;
  std::size_t exchanges = 0;
};

EasgdResult run_easgd_baseline(const EasgdSpec& spec);

}  // namespace vcdl
