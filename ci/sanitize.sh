#!/usr/bin/env bash
# Build the project with ASan+UBSan and run the tier-1 test suite under them,
# then rebuild with TSan and run the threading-sensitive suites (the worker
# pool, the GEMM kernels, and the ExecContext forward/backward paths).
#
# Usage: ci/sanitize.sh [extra ctest args...]   (extra args apply to the
# ASan/UBSan stage only). Set VCDL_SKIP_TSAN=1 to run just the first stage,
# VCDL_TSAN_REGEX to override which suites the TSan stage runs (ci/soak.sh
# uses this to point TSan at the property/soak tiers instead).
# Dedicated build trees (build-sanitize/, build-tsan/) keep the regular
# build untouched.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=build-sanitize

# Benches stay ON in this stage: the tier-1 suite includes
# bench_hotpath_smoke, the thread-scaling gate (fails when the pooled hot
# path is slower than serial at the widest in-core width). Running it under
# ASan is fine — the gate compares pooled vs serial, both equally slowed.
cmake -B "${BUILD_DIR}" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DVCDL_SANITIZE="address;undefined" \
  -DVCDL_BUILD_BENCHES=ON \
  -DVCDL_BUILD_EXAMPLES=OFF
cmake --build "${BUILD_DIR}" -j "$(nproc)"

# halt_on_error so a UBSan report fails the suite instead of scrolling by;
# detect_leaks exercises LSan on every test exit.
export ASAN_OPTIONS="detect_leaks=1:strict_string_checks=1"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"

# --no-tests=error: a label/regex filter that matches nothing is a CI bug
# (the suite silently "passed" without running), not a success.
ctest --test-dir "${BUILD_DIR}" --output-on-failure --no-tests=error \
  -j "$(nproc)" "$@"

if [[ "${VCDL_SKIP_TSAN:-0}" == "1" ]]; then
  echo "VCDL_SKIP_TSAN=1 — skipping the TSan stage."
  exit 0
fi

# --- TSan stage ------------------------------------------------------------
# TSan is incompatible with ASan, so it needs its own tree. Only the suites
# that exercise real concurrency are worth the ~10x slowdown.
TSAN_DIR=build-tsan

cmake -B "${TSAN_DIR}" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DVCDL_SANITIZE=thread \
  -DVCDL_BUILD_BENCHES=OFF \
  -DVCDL_BUILD_EXAMPLES=OFF
cmake --build "${TSAN_DIR}" -j "$(nproc)"

export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1"

# test_kernels runs the scalar-vs-SIMD equivalence properties with whatever
# vector tier the host dispatches (plus a shared 4-thread pool), so the TSan
# stage exercises the packed-panel sharing and caller-participation paths
# with SIMD enabled — not just the scalar fallback.
TSAN_REGEX="${VCDL_TSAN_REGEX:-test_thread_pool|test_tensor|test_nn_layers|test_nn_model|test_exec_threading|test_kernels|test_obs|test_wire_codec|test_consensus|test_shard_plane|test_fleet}"
# Explicit status propagation: the TSan ctest is the last command, but making
# the exit code visible keeps the contract obvious (and ci/test_ci_scripts.sh
# asserts a failing stage fails the script).
tsan_status=0
ctest --test-dir "${TSAN_DIR}" --output-on-failure --no-tests=error \
  -j "$(nproc)" -R "${TSAN_REGEX}" || tsan_status=$?
exit "${tsan_status}"
