#include "obs/metrics.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/error.hpp"
#include "obs/snapshot.hpp"

namespace vcdl::obs {
namespace {

bool valid_metric_name(const std::string& name) {
  if (name.empty() || name.front() == '.' || name.back() == '.') return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '.' || c == '_';
    if (!ok) return false;
  }
  return true;
}

}  // namespace

void Gauge::add(double d) {
  double cur = v_.load(std::memory_order_relaxed);
  while (!v_.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
  }
}

Histogram::Histogram(HistogramOptions options)
    : options_(options),
      width_((options.hi - options.lo) / static_cast<double>(options.buckets)),
      buckets_(options.buckets) {
  VCDL_CHECK(options_.buckets >= 1, "Histogram: need at least one bucket");
  VCDL_CHECK(options_.hi > options_.lo, "Histogram: hi must exceed lo");
  VCDL_CHECK(std::isfinite(options_.lo) && std::isfinite(options_.hi),
             "Histogram: bounds must be finite");
}

void Histogram::observe(double x) {
  if (x < options_.lo) {
    underflow_.fetch_add(1, std::memory_order_relaxed);
  } else if (x >= options_.hi) {
    overflow_.fetch_add(1, std::memory_order_relaxed);
  } else {
    auto i = static_cast<std::size_t>((x - options_.lo) / width_);
    // Float rounding at the upper edge can land exactly on buckets.
    if (i >= buckets_.size()) i = buckets_.size() - 1;
    buckets_[i].fetch_add(1, std::memory_order_relaxed);
  }
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + x, std::memory_order_relaxed)) {
  }
}

double Histogram::bucket_lo(std::size_t i) const {
  return options_.lo + width_ * static_cast<double>(i);
}

double Histogram::bucket_hi(std::size_t i) const {
  return i + 1 == buckets_.size() ? options_.hi
                                  : options_.lo + width_ * static_cast<double>(i + 1);
}

PercentileBracket Histogram::percentile_bracket(double q) const {
  HistogramSnapshot snap;
  snap.options = options_;
  snap.buckets.reserve(buckets_.size());
  for (const auto& b : buckets_) {
    snap.buckets.push_back(b.load(std::memory_order_relaxed));
  }
  snap.underflow = underflow();
  snap.overflow = overflow();
  snap.count = count();
  snap.sum = sum();
  return snap.percentile_bracket(q);
}

double Histogram::percentile(double q) const {
  const PercentileBracket b = percentile_bracket(q);
  return std::min(options_.hi, std::max(options_.lo, b.hi));
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  underflow_.store(0, std::memory_order_relaxed);
  overflow_.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

double WallTimeSource::now() const {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

FunctionTimeSource::FunctionTimeSource(std::function<double()> fn)
    : fn_(std::move(fn)) {
  VCDL_CHECK(fn_ != nullptr, "FunctionTimeSource: null clock");
}

Registry::Registry() : time_(&wall_) {}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    VCDL_CHECK(valid_metric_name(name),
               "obs: invalid metric name '" + name + "'");
    it = counters_.emplace(name, std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    VCDL_CHECK(valid_metric_name(name),
               "obs: invalid metric name '" + name + "'");
    it = gauges_.emplace(name, std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(const std::string& name,
                               HistogramOptions options) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    VCDL_CHECK(valid_metric_name(name),
               "obs: invalid metric name '" + name + "'");
    it = histograms_.emplace(name, std::make_unique<Histogram>(options)).first;
  } else {
    VCDL_CHECK(it->second->options() == options,
               "obs: histogram '" + name +
                   "' re-registered with different bucket options");
  }
  return *it->second;
}

std::vector<std::string> Registry::counter_names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(counters_.size());
  for (const auto& [name, _] : counters_) names.push_back(name);
  return names;
}

std::vector<std::string> Registry::gauge_names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(gauges_.size());
  for (const auto& [name, _] : gauges_) names.push_back(name);
  return names;
}

std::vector<std::string> Registry::histogram_names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(histograms_.size());
  for (const auto& [name, _] : histograms_) names.push_back(name);
  return names;
}

const TimeSource* Registry::set_time_source(const TimeSource* source) {
  return time_.exchange(source != nullptr ? source : &wall_,
                        std::memory_order_acq_rel);
}

void Registry::reset_values() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [_, c] : counters_) c->reset();
  for (auto& [_, g] : gauges_) g->reset();
  for (auto& [_, h] : histograms_) h->reset();
}

MetricsSnapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.options = h->options();
    hs.buckets.reserve(h->options().buckets);
    for (std::size_t i = 0; i < h->options().buckets; ++i) {
      hs.buckets.push_back(h->bucket(i));
    }
    hs.underflow = h->underflow();
    hs.overflow = h->overflow();
    hs.count = h->count();
    hs.sum = h->sum();
    snap.histograms.emplace(name, std::move(hs));
  }
  return snap;
}

Registry& registry() {
  static Registry instance;
  return instance;
}

}  // namespace vcdl::obs
