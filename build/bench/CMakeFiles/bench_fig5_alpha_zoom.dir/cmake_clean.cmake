file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_alpha_zoom.dir/bench_fig5_alpha_zoom.cpp.o"
  "CMakeFiles/bench_fig5_alpha_zoom.dir/bench_fig5_alpha_zoom.cpp.o.d"
  "bench_fig5_alpha_zoom"
  "bench_fig5_alpha_zoom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_alpha_zoom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
