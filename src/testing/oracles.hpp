// Equivalence oracles: metamorphic properties of the whole system.
//
// Each oracle states that two different execution paths must compute the
// same thing, so neither path needs hand-maintained expected values:
//
//   * serial vs pooled — one training step with an N-thread ExecContext
//     keeps forward outputs and input gradients bit-identical to the serial
//     path (only Conv2D's weight-gradient reduction regroups float sums; see
//     tensor/exec_context.hpp for the contract);
//   * VC-ASGD vs SGD — a P1C1T1 run with α = 0 publishes exactly the last
//     client's parameters (server·0 + client·1), so replaying its subtasks
//     as plain serial SGD reproduces the run's final parameters exactly;
//   * checkpoint save/restore vs uninterrupted run — covered in
//     tests/test_equivalence.cpp on top of the Checkpointer state hooks.
//
// Also hosts the miniature-job helpers the threading / integration /
// equivalence suites previously duplicated per file.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/job.hpp"
#include "nn/model.hpp"
#include "sim/trace.hpp"
#include "tensor/exec_context.hpp"

namespace vcdl::testing {

/// The miniature end-to-end job shared by the threading, integration and
/// equivalence suites: P2C2T2, 8 shards of a 160-image 8x8 dataset, 2
/// epochs. The golden serial values in test_exec_threading.cpp are pinned to
/// THIS spec — changing any field invalidates them.
ExperimentSpec tiny_image_spec(bool trace = false);

/// The matching miniature ResNet (3x8x8 input, 4 base filters, 1 block).
Model tiny_resnet(std::uint64_t seed);

/// One training step on `model`: forward, softmax cross-entropy, backward.
/// Returns the logits; leaves gradients populated for inspection.
Tensor train_step(Model& model, ExecContext& ctx, const Tensor& x,
                  std::span<const std::uint16_t> labels);

/// Replays a completed P1C1T1 α=0 run as plain serial SGD and returns the
/// final parameter vector, which must equal the run's
/// TrainResult::final_params exactly (no tolerance). `trace` is the run's
/// trace (spec.trace must have been true); the replay consumes its
/// exec_start events in order, reproducing the trainer's RNG stream
/// discipline draw for draw.
std::vector<float> serial_vcasgd_reference(const ExperimentSpec& spec,
                                           const TraceLog& trace);

}  // namespace vcdl::testing
