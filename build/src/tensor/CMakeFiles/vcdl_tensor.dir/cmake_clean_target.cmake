file(REMOVE_RECURSE
  "libvcdl_tensor.a"
)
