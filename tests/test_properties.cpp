// Property tier: harness meta-tests, the universal gradient-check grid, and
// the mutation smoke test proving the checker has teeth. See docs/TESTING.md
// for the tier contract and how to replay a shrunk failing seed.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <set>

#include "common/rng.hpp"
#include "nn/model_io.hpp"
#include "nn/test_hooks.hpp"
#include "testing/generators.hpp"
#include "testing/gradcheck.hpp"
#include "testing/prop.hpp"

namespace vcdl {
namespace {

using testing::GradCheckResult;
using testing::PropConfig;
using testing::PropResult;
using testing::all_layer_cases;
using testing::check_layer_gradients;
using testing::check_softmax_xent_gradients;
using testing::gen_labels;
using testing::gen_separated_tensor;
using testing::gen_shape;
using testing::gen_tensor;
using testing::prop_assert;
using testing::run_property;

// Meta-tests exercise the harness's own failure path, which a VCDL_PROP
// replay filter would bypass — skip them under replay.
bool replaying() { return std::getenv("VCDL_PROP") != nullptr; }

// --- Harness meta-tests -----------------------------------------------------

TEST(PropHarness, PassingPropertyRunsAllTrials) {
  PropConfig cfg;
  cfg.name = "meta.trivially-true";
  cfg.suite = "test_properties";
  cfg.trials = 10;
  const PropResult r = run_property(cfg, [](Rng&, int) {});
  if (replaying()) return;  // filter may have skipped it
  EXPECT_TRUE(r.passed);
  EXPECT_GE(r.trials_run, 10);
}

TEST(PropHarness, FailureShrinksToMinimalSizeWithReproCommand) {
  if (replaying()) GTEST_SKIP() << "VCDL_PROP replay active";
  PropConfig cfg;
  cfg.name = "meta.fails-at-size-5";
  cfg.suite = "test_properties";
  cfg.trials = 50;
  cfg.min_size = 1;
  cfg.max_size = 16;
  const PropResult r = run_property(cfg, [](Rng&, int size) {
    prop_assert(size < 5, "size reached " + std::to_string(size));
  });
  ASSERT_FALSE(r.passed);
  // Shrinking must land on the smallest failing size, not whatever size the
  // trial grid happened to fail at first.
  EXPECT_EQ(r.failing_size, 5);
  EXPECT_NE(r.message.find("size reached 5"), std::string::npos);
  EXPECT_NE(r.repro.find("VCDL_PROP=meta.fails-at-size-5:"), std::string::npos);
  EXPECT_NE(r.repro.find("-R test_properties"), std::string::npos);
}

TEST(PropHarness, GeneratorsAreDeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  const Shape sa = gen_shape(a, 8);
  const Shape sb = gen_shape(b, 8);
  ASSERT_TRUE(sa == sb);
  const Tensor ta = gen_tensor(a, sa);
  const Tensor tb = gen_tensor(b, sb);
  ASSERT_EQ(ta.numel(), tb.numel());
  for (std::size_t i = 0; i < ta.numel(); ++i) EXPECT_EQ(ta[i], tb[i]);
  // A different seed must not replay the same stream.
  const Shape sc = gen_shape(c, 8);
  const Tensor tc = gen_tensor(c, sa);
  bool differs = !(sc == sa);
  for (std::size_t i = 0; i < ta.numel() && !differs; ++i) {
    differs = ta[i] != tc[i];
  }
  EXPECT_TRUE(differs);
}

TEST(PropHarness, SeparatedTensorKeepsGapsAndMagnitude) {
  Rng rng(7);
  const float step = 0.12f;
  const Tensor t = gen_separated_tensor(rng, Shape{4, 9}, step);
  const auto f = t.flat();
  for (std::size_t i = 0; i < f.size(); ++i) {
    EXPECT_GE(std::fabs(f[i]), 0.375f * step) << "element " << i;
    for (std::size_t j = i + 1; j < f.size(); ++j) {
      EXPECT_GE(std::fabs(f[i] - f[j]), 0.75f * step)
          << "elements " << i << ", " << j;
    }
  }
}

TEST(PropHarness, RngStateRoundTripReplaysStream) {
  Rng rng(123);
  for (int i = 0; i < 17; ++i) (void)rng();
  (void)rng.normal();  // leaves a cached Box–Muller half in the state
  const Rng::State snap = rng.state();
  std::vector<double> expected;
  for (int i = 0; i < 32; ++i) expected.push_back(rng.normal());
  Rng replay(999);  // arbitrary different start
  replay.set_state(snap);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(replay.normal(), expected[i]);
  EXPECT_TRUE(replay.state() == rng.state());
}

// --- The gradient-check grid ------------------------------------------------

TEST(GradCheck, GridCoversEveryRegisteredLayerKind) {
  std::set<std::string> covered;
  Rng rng(1);
  for (const auto& layer_case : all_layer_cases()) {
    // The case's declared kind must match what it actually builds.
    EXPECT_EQ(layer_case.make(rng)->kind(), layer_case.kind);
    covered.insert(layer_case.kind);
  }
  for (const auto& kind : registered_layer_kinds()) {
    EXPECT_TRUE(covered.count(kind))
        << "registered layer kind '" << kind
        << "' has no gradient-check case (testing/gradcheck.cpp)";
  }
  EXPECT_EQ(covered.size(), registered_layer_kinds().size());
}

TEST(GradCheck, EveryLayerKindPassesFiniteDifferences) {
  for (const auto& layer_case : all_layer_cases()) {
    PropConfig cfg;
    cfg.name = "props.gradcheck-" + layer_case.kind;
    cfg.suite = "test_properties";
    cfg.trials = 4;
    cfg.max_size = 4;  // size is unused by the grid cases; keep trials cheap
    const PropResult r = run_property(cfg, [&](Rng& rng, int) {
      const auto layer = layer_case.make(rng);
      const Tensor x = layer_case.make_input(rng);
      const GradCheckResult res = check_layer_gradients(*layer, x, rng);
      prop_assert(res.checked > 0, layer_case.kind + ": nothing checked");
      prop_assert(res.passed, layer_case.kind + ": " + res.detail);
    });
    EXPECT_TRUE(r.passed) << r.message << "\nreplay: " << r.repro;
  }
}

TEST(GradCheck, SoftmaxCrossEntropyMatchesFiniteDifferences) {
  PropConfig cfg;
  cfg.name = "props.gradcheck-loss";
  cfg.suite = "test_properties";
  cfg.trials = 8;
  cfg.max_size = 8;
  const PropResult r = run_property(cfg, [](Rng& rng, int size) {
    const std::size_t batch = 1 + rng.uniform_index(static_cast<std::uint64_t>(size));
    const std::size_t classes = 2 + rng.uniform_index(8);
    const GradCheckResult res =
        check_softmax_xent_gradients(batch, classes, rng);
    prop_assert(res.passed, "softmax_xent: " + res.detail);
  });
  EXPECT_TRUE(r.passed) << r.message << "\nreplay: " << r.repro;
}

// --- Mutation smoke test ----------------------------------------------------
//
// Flip the test-only sabotage hook (nn/test_hooks.hpp) and the checker MUST
// flag the dense layer: a gradient checker that cannot see a 1.5x-scaled
// weight gradient would wave through real backward bugs too.

struct HookGuard {
  HookGuard() { nn_hooks::wrong_dense_gradient = true; }
  ~HookGuard() { nn_hooks::wrong_dense_gradient = false; }
};

TEST(GradCheckMutation, WrongDenseGradientIsCaught) {
  const auto cases = all_layer_cases();
  const auto dense = std::find_if(
      cases.begin(), cases.end(),
      [](const auto& layer_case) { return layer_case.kind == "dense"; });
  ASSERT_NE(dense, cases.end());
  const HookGuard guard;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    Rng rng(seed);
    const auto layer = dense->make(rng);
    const Tensor x = dense->make_input(rng);
    const GradCheckResult res = check_layer_gradients(*layer, x, rng);
    EXPECT_FALSE(res.passed)
        << "seed " << seed
        << ": sabotaged dense gradient slipped past the checker ("
        << res.detail << ")";
  }
}

TEST(GradCheckMutation, HookOffPassesAgain) {
  // Guard against the hook leaking into other tests: with the flag back off
  // the same case must pass.
  ASSERT_FALSE(nn_hooks::wrong_dense_gradient);
  const auto cases = all_layer_cases();
  const auto dense = std::find_if(
      cases.begin(), cases.end(),
      [](const auto& layer_case) { return layer_case.kind == "dense"; });
  Rng rng(1);
  const auto layer = dense->make(rng);
  const Tensor x = dense->make_input(rng);
  EXPECT_TRUE(check_layer_gradients(*layer, x, rng).passed);
}

// --- Generator smoke: labels and blobs --------------------------------------

TEST(Generators, LabelsStayInRangeAndBlobsVaryInLength) {
  PropConfig cfg;
  cfg.name = "props.generators-basic";
  cfg.suite = "test_properties";
  cfg.trials = 20;
  const PropResult r = run_property(cfg, [](Rng& rng, int size) {
    const std::size_t classes = 1 + rng.uniform_index(12);
    const auto labels =
        gen_labels(rng, static_cast<std::size_t>(size), classes);
    for (const auto l : labels) {
      prop_assert(l < classes, "label out of range");
    }
    const Blob blob = testing::gen_blob(rng, 64);
    prop_assert(blob.size() <= 64, "blob over max length");
  });
  EXPECT_TRUE(r.passed) << r.message << "\nreplay: " << r.repro;
}

}  // namespace
}  // namespace vcdl
