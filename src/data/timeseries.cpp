#include "data/timeseries.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/rng.hpp"

namespace vcdl {
namespace {

struct Regime {
  double a1, a2;        // AR(2) coefficients (stable)
  double season_freq;   // cycles per window
  double season_amp;
  double drift;
};

std::vector<Regime> make_regimes(std::size_t count, Rng& rng) {
  std::vector<Regime> out;
  out.reserve(count);
  for (std::size_t r = 0; r < count; ++r) {
    Regime reg;
    // Stable AR(2): keep the characteristic roots inside the unit circle by
    // sampling a1 in (-1.2, 1.2) and a2 so that |a2| < 1 − |a1| · 0.7.
    reg.a1 = rng.uniform(-1.1, 1.1);
    const double a2_bound = std::max(0.05, 0.9 - 0.7 * std::abs(reg.a1));
    reg.a2 = rng.uniform(-a2_bound, a2_bound);
    reg.season_freq = rng.uniform(0.5, 4.0);
    reg.season_amp = rng.uniform(0.0, 1.5);
    reg.drift = rng.uniform(-0.02, 0.02);
    out.push_back(reg);
  }
  return out;
}

// Simulates one window after a burn-in, returns raw doubles.
std::vector<double> simulate_window(const Regime& reg, std::size_t window,
                                    double noise, Rng& rng) {
  constexpr std::size_t kBurnIn = 64;
  const std::size_t total = kBurnIn + window;
  std::vector<double> x(total, 0.0);
  x[0] = rng.normal();
  x[1] = rng.normal();
  for (std::size_t t = 2; t < total; ++t) {
    x[t] = reg.a1 * x[t - 1] + reg.a2 * x[t - 2] + rng.normal(0.0, 1.0) +
           reg.drift * static_cast<double>(t);
  }
  std::vector<double> out(window);
  const double phase = rng.uniform(0.0, 2.0 * std::numbers::pi);
  for (std::size_t i = 0; i < window; ++i) {
    const double season =
        reg.season_amp *
        std::sin(2.0 * std::numbers::pi * reg.season_freq *
                     static_cast<double>(i) / static_cast<double>(window) +
                 phase);
    out[i] = x[kBurnIn + i] + season + rng.normal(0.0, noise);
  }
  return out;
}

void quantize_window(const std::vector<double>& w, std::vector<std::uint8_t>& out) {
  // Per-window min-max normalization to uint8 (shape, not scale, identifies
  // the regime — mirrors standard per-window normalization in forecasting).
  const auto [lo_it, hi_it] = std::minmax_element(w.begin(), w.end());
  const double lo = *lo_it, hi = *hi_it;
  const double span = hi - lo > 1e-9 ? hi - lo : 1.0;
  out.resize(w.size());
  for (std::size_t i = 0; i < w.size(); ++i) {
    out[i] = static_cast<std::uint8_t>(
        std::clamp((w[i] - lo) / span * 255.0, 0.0, 255.0));
  }
}

Dataset make_split(const TimeseriesSpec& spec, const std::vector<Regime>& regimes,
                   std::size_t count, Rng& rng) {
  Dataset ds(1, 1, spec.window, spec.regimes);
  std::vector<std::uint8_t> pixels;
  std::vector<std::uint16_t> labels(count);
  for (std::size_t i = 0; i < count; ++i) {
    labels[i] = static_cast<std::uint16_t>(i % spec.regimes);
  }
  rng.shuffle(labels.begin(), labels.end());
  for (std::size_t i = 0; i < count; ++i) {
    const auto window = simulate_window(regimes[labels[i]], spec.window,
                                        spec.noise, rng);
    quantize_window(window, pixels);
    ds.add(pixels, labels[i]);
  }
  return ds;
}

}  // namespace

SyntheticData make_regime_timeseries(const TimeseriesSpec& spec) {
  VCDL_CHECK(spec.regimes >= 2, "make_regime_timeseries: need >= 2 regimes");
  VCDL_CHECK(spec.window >= 8, "make_regime_timeseries: window too small");
  Rng master(spec.seed);
  Rng regime_rng = master.fork(11);
  Rng train_rng = master.fork(12);
  Rng val_rng = master.fork(13);
  Rng test_rng = master.fork(14);
  const auto regimes = make_regimes(spec.regimes, regime_rng);
  SyntheticData out;
  out.train = make_split(spec, regimes, spec.train, train_rng);
  out.validation = make_split(spec, regimes, spec.validation, val_rng);
  out.test = make_split(spec, regimes, spec.test, test_rng);
  return out;
}

}  // namespace vcdl
