#include "nn/pool2d.hpp"

namespace vcdl {

MaxPool2D::MaxPool2D(std::size_t window) : window_(window) {
  VCDL_CHECK(window > 0, "MaxPool2D: zero window");
}

Tensor MaxPool2D::forward(const Tensor& x, ExecContext& /*ctx*/,
                          bool training) {
  VCDL_CHECK(x.shape().rank() == 4, "MaxPool2D::forward expects NCHW");
  const std::size_t batch = x.shape()[0], c = x.shape()[1];
  const std::size_t h = x.shape()[2], w = x.shape()[3];
  VCDL_CHECK(h % window_ == 0 && w % window_ == 0,
             "MaxPool2D: input " + x.shape().to_string() +
                 " not divisible by window " + std::to_string(window_));
  in_shape_ = x.shape();
  const std::size_t oh = h / window_, ow = w / window_;
  Tensor y(Shape{batch, c, oh, ow});
  if (training) {
    // resize, not assign: every slot is overwritten below, and assign()
    // re-zeroes the whole index array on every step of a stable geometry.
    argmax_.resize(y.numel());
  } else {
    argmax_.clear();
    argmax_.shrink_to_fit();
  }

  const float* xp = x.data();
  float* yp = y.data();
  std::size_t out_idx = 0;
  for (std::size_t bc = 0; bc < batch * c; ++bc) {
    const float* plane = xp + bc * h * w;
    const std::size_t plane_base = bc * h * w;
    for (std::size_t oy = 0; oy < oh; ++oy) {
      for (std::size_t ox = 0; ox < ow; ++ox) {
        float best = plane[oy * window_ * w + ox * window_];
        std::size_t best_idx = oy * window_ * w + ox * window_;
        for (std::size_t ky = 0; ky < window_; ++ky) {
          for (std::size_t kx = 0; kx < window_; ++kx) {
            const std::size_t idx = (oy * window_ + ky) * w + ox * window_ + kx;
            if (plane[idx] > best) {
              best = plane[idx];
              best_idx = idx;
            }
          }
        }
        yp[out_idx] = best;
        if (training) argmax_[out_idx] = plane_base + best_idx;
        ++out_idx;
      }
    }
  }
  return y;
}

Tensor MaxPool2D::backward(const Tensor& grad_out, ExecContext& /*ctx*/) {
  VCDL_CHECK(!argmax_.empty(),
             "MaxPool2D::backward before training-mode forward");
  VCDL_CHECK(grad_out.numel() == argmax_.size(),
             "MaxPool2D::backward: gradient size mismatch");
  Tensor dx(in_shape_);
  const float* gp = grad_out.data();
  float* dp = dx.data();
  for (std::size_t i = 0; i < argmax_.size(); ++i) dp[argmax_[i]] += gp[i];
  return dx;
}

void MaxPool2D::write_spec(BinaryWriter& w) const { w.write_varint(window_); }

std::unique_ptr<Layer> MaxPool2D::clone() const {
  return std::make_unique<MaxPool2D>(*this);
}

Tensor GlobalAvgPool::forward(const Tensor& x, ExecContext& /*ctx*/,
                              bool /*training*/) {
  VCDL_CHECK(x.shape().rank() == 4, "GlobalAvgPool::forward expects NCHW");
  in_shape_ = x.shape();
  const std::size_t batch = x.shape()[0], c = x.shape()[1];
  const std::size_t plane = x.shape()[2] * x.shape()[3];
  Tensor y(Shape{batch, c});
  const float* xp = x.data();
  float* yp = y.data();
  const float inv = 1.0f / static_cast<float>(plane);
  for (std::size_t bc = 0; bc < batch * c; ++bc) {
    double acc = 0.0;
    for (std::size_t p = 0; p < plane; ++p) acc += xp[bc * plane + p];
    yp[bc] = static_cast<float>(acc) * inv;
  }
  return y;
}

Tensor GlobalAvgPool::backward(const Tensor& grad_out, ExecContext& /*ctx*/) {
  VCDL_CHECK(in_shape_.rank() == 4, "GlobalAvgPool::backward before forward");
  const std::size_t batch = in_shape_[0], c = in_shape_[1];
  const std::size_t plane = in_shape_[2] * in_shape_[3];
  VCDL_CHECK((grad_out.shape() == Shape{batch, c}),
             "GlobalAvgPool::backward: gradient shape mismatch");
  Tensor dx(in_shape_);
  const float inv = 1.0f / static_cast<float>(plane);
  const float* gp = grad_out.data();
  float* dp = dx.data();
  for (std::size_t bc = 0; bc < batch * c; ++bc) {
    const float g = gp[bc] * inv;
    for (std::size_t p = 0; p < plane; ++p) dp[bc * plane + p] = g;
  }
  return dx;
}

void GlobalAvgPool::write_spec(BinaryWriter& /*w*/) const {}

std::unique_ptr<Layer> GlobalAvgPool::clone() const {
  return std::make_unique<GlobalAvgPool>(*this);
}

}  // namespace vcdl
