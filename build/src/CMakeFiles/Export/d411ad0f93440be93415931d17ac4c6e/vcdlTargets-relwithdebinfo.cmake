#----------------------------------------------------------------
# Generated CMake target import file for configuration "RelWithDebInfo".
#----------------------------------------------------------------

# Commands may need to know the format version.
set(CMAKE_IMPORT_FILE_VERSION 1)

# Import target "vcdl::vcdl_common" for configuration "RelWithDebInfo"
set_property(TARGET vcdl::vcdl_common APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(vcdl::vcdl_common PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libvcdl_common.a"
  )

list(APPEND _cmake_import_check_targets vcdl::vcdl_common )
list(APPEND _cmake_import_check_files_for_vcdl::vcdl_common "${_IMPORT_PREFIX}/lib/libvcdl_common.a" )

# Import target "vcdl::vcdl_tensor" for configuration "RelWithDebInfo"
set_property(TARGET vcdl::vcdl_tensor APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(vcdl::vcdl_tensor PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libvcdl_tensor.a"
  )

list(APPEND _cmake_import_check_targets vcdl::vcdl_tensor )
list(APPEND _cmake_import_check_files_for_vcdl::vcdl_tensor "${_IMPORT_PREFIX}/lib/libvcdl_tensor.a" )

# Import target "vcdl::vcdl_nn" for configuration "RelWithDebInfo"
set_property(TARGET vcdl::vcdl_nn APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(vcdl::vcdl_nn PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libvcdl_nn.a"
  )

list(APPEND _cmake_import_check_targets vcdl::vcdl_nn )
list(APPEND _cmake_import_check_files_for_vcdl::vcdl_nn "${_IMPORT_PREFIX}/lib/libvcdl_nn.a" )

# Import target "vcdl::vcdl_data" for configuration "RelWithDebInfo"
set_property(TARGET vcdl::vcdl_data APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(vcdl::vcdl_data PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libvcdl_data.a"
  )

list(APPEND _cmake_import_check_targets vcdl::vcdl_data )
list(APPEND _cmake_import_check_files_for_vcdl::vcdl_data "${_IMPORT_PREFIX}/lib/libvcdl_data.a" )

# Import target "vcdl::vcdl_sim" for configuration "RelWithDebInfo"
set_property(TARGET vcdl::vcdl_sim APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(vcdl::vcdl_sim PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libvcdl_sim.a"
  )

list(APPEND _cmake_import_check_targets vcdl::vcdl_sim )
list(APPEND _cmake_import_check_files_for_vcdl::vcdl_sim "${_IMPORT_PREFIX}/lib/libvcdl_sim.a" )

# Import target "vcdl::vcdl_storage" for configuration "RelWithDebInfo"
set_property(TARGET vcdl::vcdl_storage APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(vcdl::vcdl_storage PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libvcdl_storage.a"
  )

list(APPEND _cmake_import_check_targets vcdl::vcdl_storage )
list(APPEND _cmake_import_check_files_for_vcdl::vcdl_storage "${_IMPORT_PREFIX}/lib/libvcdl_storage.a" )

# Import target "vcdl::vcdl_grid" for configuration "RelWithDebInfo"
set_property(TARGET vcdl::vcdl_grid APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(vcdl::vcdl_grid PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libvcdl_grid.a"
  )

list(APPEND _cmake_import_check_targets vcdl::vcdl_grid )
list(APPEND _cmake_import_check_files_for_vcdl::vcdl_grid "${_IMPORT_PREFIX}/lib/libvcdl_grid.a" )

# Import target "vcdl::vcdl_core" for configuration "RelWithDebInfo"
set_property(TARGET vcdl::vcdl_core APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(vcdl::vcdl_core PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libvcdl_core.a"
  )

list(APPEND _cmake_import_check_targets vcdl::vcdl_core )
list(APPEND _cmake_import_check_files_for_vcdl::vcdl_core "${_IMPORT_PREFIX}/lib/libvcdl_core.a" )

# Commands beyond this point should not need to know the version.
set(CMAKE_IMPORT_FILE_VERSION)
