// Figure 4 — effect of the VC-ASGD hyperparameter α at P3C3T4.
//
// Runs α ∈ {0.7, 0.95, 0.999, Var} and prints each series with the min/max
// accuracy band across the 50 subtasks of every epoch (the paper's error
// bars). Expected shape (§IV-C):
//   * α = 0.7 rises fastest early but plateaus; α = 0.95 overtakes it in
//     later epochs;
//   * α = 0.999 (the EASGD-with-moving-rate-0.001 analogue) barely trains;
//   * accuracy spread ordering: 0.7 > 0.95 > Var > 0.999;
//   * Var (α_e = e/(e+1)) trains faster than constant 0.95 with a smaller
//     spread than either constant.
//
// Writes the full series to vcdl_fig4_series.csv so bench_fig5_alpha_zoom
// can print its zoomed windows without re-running.
#include <fstream>
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace vcdl;
  const Config cfg = Config::from_args(argc, argv);
  bench::print_header("Figure 4 — VC-ASGD alpha sweep at P3C3T4",
                      "Fig. 4 (alpha in {0.7, 0.95, 0.999, var})");

  const char* alphas[] = {"0.7", "0.95", "0.999", "var"};
  Table table = bench::epoch_series_table();
  std::vector<TrainResult> results;
  for (const char* alpha : alphas) {
    ExperimentSpec spec = bench::base_spec(cfg, /*default_epochs=*/16);
    spec.parameter_servers = 3;
    spec.clients = 3;
    spec.tasks_per_client = 4;
    spec.alpha = alpha;
    const TrainResult r = run_experiment(spec);
    bench::print_run_summary(r);
    bench::add_epoch_rows(table, std::string("alpha=") + alpha, r);
    results.push_back(r);
  }
  std::cout << "\n";
  table.print(std::cout);

  // Spread summary (the paper's error-bar comparison).
  std::cout << "\nMean accuracy spread (max-min across subtasks, averaged over"
               " the last half of training):\n";
  for (const auto& r : results) {
    double spread = 0.0;
    std::size_t n = 0;
    for (std::size_t i = r.epochs.size() / 2; i < r.epochs.size(); ++i) {
      spread += r.epochs[i].max_subtask_acc - r.epochs[i].min_subtask_acc;
      ++n;
    }
    std::cout << "  alpha=" << r.spec.alpha << ": "
              << Table::fmt(spread / static_cast<double>(n), 3) << "\n";
  }

  const std::string csv_path =
      cfg.get_string("csv", "vcdl_fig4_series.csv");
  std::ofstream csv(csv_path);
  table.print_csv(csv);
  std::cout << "\nseries written to " << csv_path << "\n";
  return 0;
}
