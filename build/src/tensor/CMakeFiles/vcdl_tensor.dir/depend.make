# Empty dependencies file for vcdl_tensor.
# This may be replaced when dependencies are built.
