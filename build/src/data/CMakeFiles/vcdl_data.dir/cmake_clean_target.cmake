file(REMOVE_RECURSE
  "libvcdl_data.a"
)
