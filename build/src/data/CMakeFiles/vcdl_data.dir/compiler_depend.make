# Empty compiler generated dependencies file for vcdl_data.
# This may be replaced when dependencies are built.
