#include "core/work_generator.hpp"

#include "common/error.hpp"
#include "sim/engine.hpp"

namespace vcdl {

WorkGenerator::WorkGenerator(Scheduler& scheduler, FileServer& files,
                             TraceLog& trace, SimEngine& engine,
                             Options options)
    : scheduler_(scheduler), files_(files), trace_(trace), engine_(engine),
      options_(std::move(options)) {
  VCDL_CHECK(options_.num_shards >= 1, "WorkGenerator: need >= 1 shard");
  VCDL_CHECK(options_.replication >= 1, "WorkGenerator: replication >= 1");
}

void WorkGenerator::publish_static(Blob arch, std::vector<Blob> shard_blobs) {
  VCDL_CHECK(shard_blobs.size() == options_.num_shards,
             "WorkGenerator: shard blob count mismatch");
  files_.publish(options_.arch_file, std::move(arch), /*compress=*/true);
  for (std::size_t s = 0; s < shard_blobs.size(); ++s) {
    files_.publish(shard_file(s), std::move(shard_blobs[s]), /*compress=*/true);
  }
}

void WorkGenerator::generate_epoch(std::size_t epoch) {
  VCDL_CHECK(epoch == epochs_generated_ + 1,
             "WorkGenerator: epochs must be generated in order");
  VCDL_CHECK(files_.has(options_.params_file),
             "WorkGenerator: parameter file not published yet");
  for (std::size_t s = 0; s < options_.num_shards; ++s) {
    Workunit wu;
    wu.id = next_id_++;
    wu.epoch = epoch;
    wu.shard = s;
    wu.deadline_s = options_.subtask_timeout_s;
    wu.replication = options_.replication;
    // The architecture file and the data shard are sticky (cacheable); the
    // parameter copy changes with every assimilation and is always fetched.
    wu.inputs = {FileRef{options_.arch_file, /*sticky=*/true},
                 FileRef{options_.params_file, /*sticky=*/false},
                 FileRef{shard_file(s), /*sticky=*/true}};
    scheduler_.add_unit(wu);
    trace_.record(engine_.now(), TraceKind::work_generated, "work-generator",
                  wu.label());
  }
  ++epochs_generated_;
}

}  // namespace vcdl
