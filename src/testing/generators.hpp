// Seeded random-case generators for the property suites.
//
// Everything here derives from the Rng + size the prop harness supplies, so
// a (seed, size) pair reproduces any generated case exactly (prop.hpp). The
// generators cover the repo's main value domains: tensor shapes and
// contents, class labels, opaque blobs, whole models, and miniature
// ExperimentSpecs the trainer oracles and chaos-determinism properties run
// end to end.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/blob.hpp"
#include "common/rng.hpp"
#include "core/job.hpp"
#include "nn/model.hpp"
#include "tensor/tensor.hpp"

namespace vcdl::testing {

/// Random shape with `rank` in [min_rank, max_rank]; every dim in [1, size].
Shape gen_shape(Rng& rng, int size, std::size_t min_rank = 1,
                std::size_t max_rank = 4);

/// I.i.d. N(0, scale) entries.
Tensor gen_tensor(Rng& rng, const Shape& shape, float scale = 1.0f);

/// Tensor whose entries are pairwise at least 3*step/4 apart and at least
/// 3*step/8 away from zero: a sign-flipped, jittered arithmetic grid in
/// shuffled order. Finite differencing with perturbation < 3*step/8 cannot
/// cross a ReLU kink or flip a MaxPool argmax on such data, which is what
/// makes piecewise-linear layers gradient-checkable (gradcheck.hpp).
Tensor gen_separated_tensor(Rng& rng, const Shape& shape, float step);

/// `batch` labels uniform in [0, classes).
std::vector<std::uint16_t> gen_labels(Rng& rng, std::size_t batch,
                                      std::size_t classes);

/// Opaque byte blob, length uniform in [0, max_bytes].
Blob gen_blob(Rng& rng, std::size_t max_bytes);

/// A random model plus the input that feeds it. `size` scales width/depth.
struct ModelCase {
  Model model;
  Tensor input;                       // batch included
  std::vector<std::uint16_t> labels;  // batch entries in [0, classes)
  std::size_t classes = 0;
  /// True when the stack contains Conv2D — the one layer whose pooled
  /// weight-gradient reduction is tolerance-equal rather than bit-equal to
  /// serial (tensor/exec_context.hpp).
  bool has_conv = false;
  std::string desc;  // human-readable architecture summary
};

/// Random dense or convolutional stack ending in `classes` logits. Layer
/// menu spans every differentiable registered kind; Dropout appears with its
/// own seed so clones replay masks.
ModelCase gen_model_case(Rng& rng, int size);

/// Miniature end-to-end experiment: random PnCnTn in [1,3], 3-6 shards,
/// 1-2 epochs, random α / store / optimizer / model kind, optionally
/// preemptible clients and a transfer/corruption fault plan. Small enough
/// that a full run_experiment finishes in well under a second.
ExperimentSpec gen_experiment_spec(Rng& rng, int size, bool chaos);

}  // namespace vcdl::testing
