// Network latency/bandwidth model.
//
// VC clients reach the server over WAN links with variable latency (§II-A);
// the model charges per-transfer time = RTT-ish base latency (log-normally
// jittered) + payload / min(client NIC, server NIC) bandwidth. Transfers of
// compressed artifacts charge the compressed size — the file-server codec
// decides that.
#pragma once

#include "common/rng.hpp"
#include "sim/engine.hpp"
#include "sim/instance.hpp"

namespace vcdl {

struct NetworkModel {
  /// Median one-way setup latency per transfer (HTTP request + TCP).
  double base_latency_s = 0.05;
  /// Log-normal sigma of the latency multiplier (0 = deterministic).
  double latency_sigma = 0.35;
  /// Fraction of the nominal NIC bandwidth actually achieved (TCP overhead,
  /// shared tenancy).
  double bandwidth_efficiency = 0.6;
  /// Extra WAN penalty multiplier on bandwidth (1 = datacenter LAN; a
  /// volunteer on home broadband might be 10–50).
  double wan_bandwidth_factor = 1.0;

  /// Simulated seconds to move `bytes` between two instances.
  SimTime transfer_time(std::size_t bytes, const InstanceType& a,
                        const InstanceType& b, Rng& rng) const;
};

}  // namespace vcdl
