# Empty compiler generated dependencies file for timeseries_forecast.
# This may be replaced when dependencies are built.
