file(REMOVE_RECURSE
  "CMakeFiles/test_param_server.dir/test_param_server.cpp.o"
  "CMakeFiles/test_param_server.dir/test_param_server.cpp.o.d"
  "test_param_server"
  "test_param_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_param_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
