#include "nn/misc_layers.hpp"

namespace vcdl {

Tensor Flatten::forward(const Tensor& x, ExecContext& /*ctx*/,
                        bool /*training*/) {
  VCDL_CHECK(x.shape().rank() >= 2, "Flatten expects rank >= 2");
  in_shape_ = x.shape();
  const std::size_t batch = x.shape()[0];
  return x.reshaped(Shape{batch, x.numel() / batch});
}

Tensor Flatten::backward(const Tensor& grad_out, ExecContext& /*ctx*/) {
  VCDL_CHECK(grad_out.numel() == in_shape_.numel(),
             "Flatten::backward: gradient size mismatch");
  return grad_out.reshaped(in_shape_);
}

void Flatten::write_spec(BinaryWriter& /*w*/) const {}
std::unique_ptr<Layer> Flatten::clone() const {
  return std::make_unique<Flatten>(*this);
}

Dropout::Dropout(double rate, std::uint64_t seed)
    : rate_(rate), seed_(seed), rng_(seed) {
  VCDL_CHECK(rate >= 0.0 && rate < 1.0, "Dropout rate must be in [0, 1)");
}

Dropout::Dropout(const Dropout& other)
    : rate_(other.rate_), seed_(other.seed_), rng_(other.rng_) {}

Tensor Dropout::forward(const Tensor& x, ExecContext& /*ctx*/, bool training) {
  if (!training || rate_ == 0.0) {
    used_mask_ = false;
    mask_ = Tensor();
    return x;
  }
  used_mask_ = true;
  mask_ = Tensor(x.shape());
  Tensor y = x;
  const float keep_inv = 1.0f / static_cast<float>(1.0 - rate_);
  auto mf = mask_.flat();
  auto yf = y.flat();
  for (std::size_t i = 0; i < yf.size(); ++i) {
    if (rng_.bernoulli(rate_)) {
      mf[i] = 0.0f;
      yf[i] = 0.0f;
    } else {
      mf[i] = keep_inv;
      yf[i] *= keep_inv;
    }
  }
  return y;
}

Tensor Dropout::backward(const Tensor& grad_out, ExecContext& /*ctx*/) {
  if (!used_mask_) return grad_out;
  VCDL_CHECK(grad_out.shape() == mask_.shape(),
             "Dropout::backward: gradient shape mismatch");
  Tensor dx = grad_out;
  auto df = dx.flat();
  auto mf = mask_.flat();
  for (std::size_t i = 0; i < df.size(); ++i) df[i] *= mf[i];
  return dx;
}

void Dropout::write_spec(BinaryWriter& w) const {
  w.write(rate_);
  w.write(seed_);
}

std::unique_ptr<Layer> Dropout::clone() const {
  return std::make_unique<Dropout>(*this);
}

Residual::Residual(std::vector<std::unique_ptr<Layer>> inner)
    : inner_(std::move(inner)) {
  VCDL_CHECK(!inner_.empty(), "Residual: empty inner stack");
}

Residual::Residual(const Residual& other) {
  inner_.reserve(other.inner_.size());
  for (const auto& layer : other.inner_) inner_.push_back(layer->clone());
}

Tensor Residual::forward(const Tensor& x, ExecContext& ctx, bool training) {
  Tensor y = x;
  for (auto& layer : inner_) y = layer->forward(y, ctx, training);
  VCDL_CHECK(y.shape() == x.shape(),
             "Residual: inner stack changed shape " + x.shape().to_string() +
                 " -> " + y.shape().to_string());
  auto yf = y.flat();
  auto xf = x.flat();
  for (std::size_t i = 0; i < yf.size(); ++i) yf[i] += xf[i];
  return y;
}

Tensor Residual::backward(const Tensor& grad_out, ExecContext& ctx) {
  Tensor g = grad_out;
  for (auto it = inner_.rbegin(); it != inner_.rend(); ++it) {
    g = (*it)->backward(g, ctx);
  }
  // Shortcut path: dL/dx += dL/dy.
  auto gf = g.flat();
  auto of = grad_out.flat();
  VCDL_CHECK(gf.size() == of.size(), "Residual::backward: size mismatch");
  for (std::size_t i = 0; i < gf.size(); ++i) gf[i] += of[i];
  return g;
}

std::vector<Tensor*> Residual::params() {
  std::vector<Tensor*> out;
  for (auto& layer : inner_) {
    for (Tensor* p : layer->params()) out.push_back(p);
  }
  return out;
}

std::vector<Tensor*> Residual::grads() {
  std::vector<Tensor*> out;
  for (auto& layer : inner_) {
    for (Tensor* g : layer->grads()) out.push_back(g);
  }
  return out;
}

std::size_t Residual::cache_bytes() const {
  std::size_t n = 0;
  for (const auto& layer : inner_) n += layer->cache_bytes();
  return n;
}

// Inner layers are serialized recursively by model_io (which knows the layer
// factory); the spec itself carries nothing.
void Residual::write_spec(BinaryWriter& /*w*/) const {}

std::unique_ptr<Layer> Residual::clone() const {
  return std::make_unique<Residual>(*this);
}

}  // namespace vcdl
