// Scale stress: the grid machinery must stay correct (and fast) well beyond
// the paper's 5-client/50-subtask shape — hundreds of clients, thousands of
// workunits, aggressive preemption. The execute callback is a stub so this
// exercises the middleware, not the math.
#include <gtest/gtest.h>

#include "grid/client.hpp"
#include "grid/file_server.hpp"
#include "grid/scheduler.hpp"
#include "grid/server.hpp"

namespace vcdl {
namespace {

struct NullBackend : AssimilatorBackend {
  SimEngine& engine;
  std::size_t done = 0;
  explicit NullBackend(SimEngine& e) : engine(e) {}
  void assimilate(ResultEnvelope, std::size_t,
                  std::function<void()> on_done) override {
    engine.schedule(0.3, [this, cb = std::move(on_done)] {
      ++done;
      cb();
    });
  }
};

TEST(Scale, HundredClientsThousandUnits) {
  SimEngine engine;
  TraceLog trace;
  trace.set_enabled(false);
  Scheduler scheduler;
  FileServer files;
  NetworkModel network;
  const FleetCatalog catalog = table1_catalog();
  GridServer server(engine, scheduler, trace, 8,
                    [](const Blob&) { return true; });
  NullBackend backend(engine);
  server.set_backend(&backend);

  files.publish("params", Blob(std::vector<std::uint8_t>(64, 1)), false);
  for (std::size_t sh = 0; sh < 16; ++sh) {
    files.publish("shard/" + std::to_string(sh),
                  Blob(std::vector<std::uint8_t>(64, 2)), false);
  }
  constexpr std::size_t kUnits = 1500;
  for (WorkunitId id = 1; id <= kUnits; ++id) {
    Workunit wu;
    wu.id = id;
    wu.shard = id % 16;
    wu.deadline_s = 1200.0;
    wu.inputs = {FileRef{"params", false},
                 FileRef{"shard/" + std::to_string(wu.shard), true}};
    scheduler.add_unit(wu);
  }

  const ExecuteFn exec = [](const Workunit&, ClientId, ExecContext&) {
    return ExecOutcome{Blob(std::vector<std::uint8_t>(8, 9)), 40.0};
  };
  const auto fleet = make_client_fleet(catalog, 100, true, 0.2);
  std::vector<std::unique_ptr<SimClient>> clients;
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    ClientConfig cfg;
    cfg.max_concurrent = 2;
    cfg.preemption.interruptions_per_hour = 0.2;
    cfg.preemption.downtime_s = 60.0;
    clients.push_back(std::make_unique<SimClient>(
        i, fleet[i], cfg, engine, network, catalog.server, files, scheduler,
        server, trace, Rng(1000 + i), exec));
    clients.back()->start();
  }
  bool running = true;
  std::function<void()> sweep = [&] {
    if (!running) return;
    (void)scheduler.expire_deadlines(engine.now());
    engine.schedule(30.0, sweep);
  };
  engine.schedule(30.0, sweep);

  // Drive until every unit is assimilated (or a generous cutoff).
  for (int rounds = 0; rounds < 4000 && backend.done < kUnits; ++rounds) {
    engine.run_until(engine.now() + 60.0);
  }
  running = false;
  for (auto& c : clients) c->stop();
  engine.run();

  EXPECT_EQ(backend.done, kUnits);
  EXPECT_TRUE(scheduler.all_done());
  std::size_t preemptions = 0;
  for (const auto& c : clients) preemptions += c->stats().preemptions;
  EXPECT_GT(preemptions, 0u);  // faults actually happened along the way
}

TEST(Scale, EngineHandlesQuarterMillionEvents) {
  SimEngine engine;
  std::size_t fired = 0;
  Rng rng(3);
  for (int i = 0; i < 250000; ++i) {
    engine.schedule(rng.uniform(0.0, 1000.0), [&fired] { ++fired; });
  }
  engine.run();
  EXPECT_EQ(fired, 250000u);
}

}  // namespace
}  // namespace vcdl
