// Wire codec for parameter traffic — version-based deltas + optional 8-bit
// linear quantization.
//
// The paper's volunteer setting is dominated by moving parameter files over
// slow WAN links (§II-A, §IV). BOINC answers with transparent on-the-wire
// compression; DeDLOC goes further with quantized gradient exchange. VCDL's
// wire codec sits between those two points:
//
//  * Blob-level deltas (`delta_encode`/`delta_decode`) let the FileServer
//    serve a client that already holds version `v` of a file the *difference*
//    against `v` instead of the whole payload. The engine encodes each 32-bit
//    word of the target as the zigzagged integer difference from the base
//    word (IEEE-754 bit patterns of same-sign floats order like integers, so
//    near-identical parameter copies yield small integers), transposes the
//    zigzag bytes into planes, and LZ-compresses — falling back to the raw
//    stream when LZ would expand, so a delta never costs more than the full
//    payload plus a header.
//
//  * Float-level frames (`encode_params_delta`/`encode_params_q8` +
//    `decode_params`) carry client→server result uploads as deltas against
//    the published base version the client trained from. The lossless mode
//    runs the same word-difference engine over the float bit patterns
//    (decode is bit-exact); the q8 mode linearly quantizes the float
//    difference to 8 bits per weight in 1 KiB blocks (~4x smaller uploads,
//    bounded per-weight error of half a quantization step per block).
//
// Frames are self-checksummed (FNV over the encoded body, same layout as
// nn/model_io), so the grid validator can reject a corrupted upload without
// holding the base parameters. Every decode is deterministic; the lossless
// mode reproduces the full-blob payload bit for bit, which is what keeps
// same-seed runs TraceDigest-identical (docs/SIMULATION.md §4b).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/blob.hpp"

namespace vcdl {

/// How parameter traffic is encoded on the simulated wire.
///  full      — whole (LZ-compressed) parameter blobs; the pre-codec behavior.
///  delta     — lossless: zigzag word-difference + byte-plane transpose + LZ.
///  delta_q8  — downloads as lossless deltas, uploads additionally quantized
///              to 8 bits per weight (lossy, ablation-bench territory).
enum class WireMode : std::uint8_t { full, delta, delta_q8 };

/// Parses an `ExperimentSpec::wire_codec` knob ("full" | "delta" |
/// "delta_q8"); throws InvalidArgument on anything else.
WireMode wire_mode_from_name(const std::string& name);
const char* wire_mode_name(WireMode mode);

// --- Blob-level deltas (FileServer download path) ---------------------------

/// Encodes `target` as a delta against `base`. Sizes may differ: the word
/// grid covers the common region (at the byte phase that encodes smallest),
/// the tail is carried through. Output is self-describing (magic + target
/// size + phase) but requires the exact `base` bytes to decode.
Blob delta_encode(std::span<const std::uint8_t> base,
                  std::span<const std::uint8_t> target);

/// Inverse of delta_encode(); throws CorruptData on malformed input or when
/// the decoded size disagrees with the encoded header.
Blob delta_decode(std::span<const std::uint8_t> base,
                  std::span<const std::uint8_t> encoded);

// --- Float parameter frames (client upload path) ----------------------------

/// Stable 64-bit FNV-1a hash of a parameter vector's bytes. Travels in every
/// frame header so a decoder can verify it still holds the *same* base the
/// frame was encoded against — version numbers alone are not enough when a
/// checkpoint replay rewinds the parameters without advancing the version.
std::uint64_t params_hash(std::span<const float> params);

/// Parsed frame header (see `read_frame_header`).
struct WireFrame {
  WireMode mode = WireMode::full;  // delta or delta_q8 in a valid frame
  std::uint64_t base_version = 0;  // assimilator commit count trained from
  std::uint64_t base_hash = 0;     // params_hash of the encode base
  std::uint64_t count = 0;         // number of float parameters
};

/// Lossless upload frame: zigzag word-difference of float bit patterns vs
/// `base`, transposed and LZ-compressed (raw fallback when LZ expands).
/// `decode_params` with the same base is bit-exact.
Blob encode_params_delta(std::span<const float> base,
                         std::span<const float> target,
                         std::uint64_t base_version);

/// Quantized upload frame: float difference (target - base) linearly
/// quantized to 8 bits per weight in 1024-weight blocks (per-block lo/hi
/// scale), then LZ-compressed. Per-weight absolute error is bounded by half
/// the block's quantization step.
Blob encode_params_q8(std::span<const float> base,
                      std::span<const float> target,
                      std::uint64_t base_version);

/// True when `payload` parses as a wire frame (structure only; the checksum
/// may still be wrong — see validate_frame). A full-blob parameter file from
/// nn/model_io never parses as a frame.
bool is_wire_frame(const Blob& payload);

/// True when `payload` is a structurally valid frame whose body checksum
/// matches — the grid validator's corruption screen, usable without the base.
bool validate_frame(const Blob& payload);

/// Header of a checksum-valid frame; throws CorruptData otherwise.
WireFrame read_frame_header(const Blob& payload);

/// Decodes a frame against `base` (which must hold exactly `count` floats —
/// the model's flat parameter vector). Throws CorruptData on checksum or
/// size mismatch. Deterministic for both modes. Does NOT require `base` to
/// match the frame's `base_hash`: the caller decides whether a different
/// base is acceptable (it is for q8's float-space diffs, never for delta's
/// bit-space diffs — see VcAsgdAssimilator::decode_payload).
std::vector<float> decode_params(const Blob& payload,
                                 std::span<const float> base);

// --- Shard bundles (sharded parameter plane, core/shard_plan.hpp) -----------

/// Packs one wire frame per parameter shard into a single upload container.
/// Only used at param_shards > 1 — a one-shard delta upload stays a bare
/// frame, bit-identical to the monolithic plane. Requires >= 2 parts.
Blob pack_shard_frames(const std::vector<Blob>& parts);

/// True when `payload` parses as a shard bundle (structure only). Bundles,
/// wire frames and full parameter blobs are mutually exclusive formats.
bool is_shard_bundle(const Blob& payload);

/// The bundle's per-shard frames, in shard order; throws CorruptData on a
/// malformed container or container-checksum mismatch.
std::vector<Blob> unpack_shard_frames(const Blob& payload);

/// Corruption screen for bundled uploads: container checksum plus
/// validate_frame on every part — usable without any decode base.
bool validate_shard_bundle(const Blob& payload);

}  // namespace vcdl
