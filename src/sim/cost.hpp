// Fleet cost accounting (§IV-E).
//
// Tracks instance-hours per instance type and prices a run under standard
// vs preemptible billing, producing the paper's "fleet costs $1.67/hr
// standard, $0.50/hr preemptible; $13.4 vs $4 for an 8 h run; 70 % saved"
// style rows.
#pragma once

#include <string>
#include <vector>

#include "sim/instance.hpp"

namespace vcdl {

class CostLedger {
 public:
  /// Registers usage of `instance` for `seconds` of simulated time.
  void add_usage(const InstanceType& instance, SimTime seconds);

  double total_instance_hours() const;
  /// Fleet cost at standard (on-demand) prices.
  double standard_cost_usd() const;
  /// Fleet cost at preemptible prices (per-type discounts applied).
  double preemptible_cost_usd() const;
  /// 1 − preemptible/standard, in [0, 1].
  double savings_fraction() const;

  /// Hourly burn rates for a set of instances, independent of a run.
  static double fleet_hourly_standard(const std::vector<InstanceType>& fleet);
  static double fleet_hourly_preemptible(const std::vector<InstanceType>& fleet);

 private:
  struct Usage {
    InstanceType type;
    SimTime seconds = 0.0;
  };
  std::vector<Usage> usage_;
};

}  // namespace vcdl
