#include "nn/conv2d.hpp"

#include <cstring>

#include "common/rng.hpp"
#include "tensor/ops.hpp"

namespace vcdl {
namespace {

// Expands the padded input patch matrix: col[(c*k*k + ky*k + kx)][oy*OW + ox]
// = x[c][oy*stride + ky - pad][ox*stride + kx - pad] (0 outside).
void im2col(const float* x, std::size_t channels, std::size_t h, std::size_t w,
            std::size_t kernel, std::size_t stride, std::size_t pad,
            std::size_t oh, std::size_t ow, float* col) {
  const std::size_t plane = h * w;
  const std::size_t out_plane = oh * ow;
  for (std::size_t c = 0; c < channels; ++c) {
    const float* xc = x + c * plane;
    for (std::size_t ky = 0; ky < kernel; ++ky) {
      for (std::size_t kx = 0; kx < kernel; ++kx) {
        float* row = col + ((c * kernel + ky) * kernel + kx) * out_plane;
        for (std::size_t oy = 0; oy < oh; ++oy) {
          const std::ptrdiff_t iy =
              static_cast<std::ptrdiff_t>(oy * stride + ky) -
              static_cast<std::ptrdiff_t>(pad);
          if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(h)) {
            std::memset(row + oy * ow, 0, ow * sizeof(float));
            continue;
          }
          const float* x_row = xc + static_cast<std::size_t>(iy) * w;
          for (std::size_t ox = 0; ox < ow; ++ox) {
            const std::ptrdiff_t ix =
                static_cast<std::ptrdiff_t>(ox * stride + kx) -
                static_cast<std::ptrdiff_t>(pad);
            row[oy * ow + ox] =
                (ix < 0 || ix >= static_cast<std::ptrdiff_t>(w))
                    ? 0.0f
                    : x_row[static_cast<std::size_t>(ix)];
          }
        }
      }
    }
  }
}

// Scatter-adds the column matrix back into image layout (inverse of im2col
// with accumulation at overlapping positions).
void col2im(const float* col, std::size_t channels, std::size_t h, std::size_t w,
            std::size_t kernel, std::size_t stride, std::size_t pad,
            std::size_t oh, std::size_t ow, float* x) {
  const std::size_t plane = h * w;
  const std::size_t out_plane = oh * ow;
  for (std::size_t c = 0; c < channels; ++c) {
    float* xc = x + c * plane;
    for (std::size_t ky = 0; ky < kernel; ++ky) {
      for (std::size_t kx = 0; kx < kernel; ++kx) {
        const float* row = col + ((c * kernel + ky) * kernel + kx) * out_plane;
        for (std::size_t oy = 0; oy < oh; ++oy) {
          const std::ptrdiff_t iy =
              static_cast<std::ptrdiff_t>(oy * stride + ky) -
              static_cast<std::ptrdiff_t>(pad);
          if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(h)) continue;
          float* x_row = xc + static_cast<std::size_t>(iy) * w;
          for (std::size_t ox = 0; ox < ow; ++ox) {
            const std::ptrdiff_t ix =
                static_cast<std::ptrdiff_t>(ox * stride + kx) -
                static_cast<std::ptrdiff_t>(pad);
            if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(w)) continue;
            x_row[static_cast<std::size_t>(ix)] += row[oy * ow + ox];
          }
        }
      }
    }
  }
}

}  // namespace

Conv2D::Conv2D(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel, std::size_t stride, std::size_t pad,
               Init scheme, Rng& rng)
    : in_c_(in_channels), out_c_(out_channels), kernel_(kernel),
      stride_(stride), pad_(pad), scheme_(scheme),
      w_(Shape{out_channels, in_channels * kernel * kernel}),
      b_(Shape{out_channels}),
      dw_(Shape{out_channels, in_channels * kernel * kernel}),
      db_(Shape{out_channels}) {
  VCDL_CHECK(in_channels > 0 && out_channels > 0 && kernel > 0 && stride > 0,
             "Conv2D: bad hyperparameters");
  const std::size_t fan_in = in_channels * kernel * kernel;
  const std::size_t fan_out = out_channels * kernel * kernel;
  initialize(w_, scheme, fan_in, fan_out, rng);
}

Tensor Conv2D::forward(const Tensor& x, bool /*training*/) {
  VCDL_CHECK(x.shape().rank() == 4 && x.shape()[1] == in_c_,
             "Conv2D::forward: expected [batch, " + std::to_string(in_c_) +
                 ", H, W], got " + x.shape().to_string());
  const std::size_t batch = x.shape()[0];
  const std::size_t h = x.shape()[2], w = x.shape()[3];
  VCDL_CHECK(h + 2 * pad_ >= kernel_ && w + 2 * pad_ >= kernel_,
             "Conv2D: kernel larger than padded input");
  const std::size_t oh = out_height(h), ow = out_width(w);
  last_h_ = h;
  last_w_ = w;
  last_batch_ = batch;

  const std::size_t col_rows = in_c_ * kernel_ * kernel_;
  const std::size_t out_plane = oh * ow;
  cols_.assign(batch, Tensor(Shape{col_rows, out_plane}));

  Tensor y(Shape{batch, out_c_, oh, ow});
  Tensor y_mat;  // reused [out_c, out_plane] view buffer
  for (std::size_t bi = 0; bi < batch; ++bi) {
    im2col(x.data() + bi * in_c_ * h * w, in_c_, h, w, kernel_, stride_, pad_,
           oh, ow, cols_[bi].data());
    ops::matmul(w_, cols_[bi], y_mat);
    float* y_b = y.data() + bi * out_c_ * out_plane;
    const float* ym = y_mat.data();
    for (std::size_t oc = 0; oc < out_c_; ++oc) {
      const float bias = b_[oc];
      for (std::size_t p = 0; p < out_plane; ++p) {
        y_b[oc * out_plane + p] = ym[oc * out_plane + p] + bias;
      }
    }
  }
  return y;
}

Tensor Conv2D::backward(const Tensor& grad_out) {
  VCDL_CHECK(last_batch_ > 0, "Conv2D::backward before forward");
  const std::size_t oh = out_height(last_h_), ow = out_width(last_w_);
  VCDL_CHECK((grad_out.shape() == Shape{last_batch_, out_c_, oh, ow}),
             "Conv2D::backward: gradient shape mismatch");
  const std::size_t out_plane = oh * ow;
  const std::size_t col_rows = in_c_ * kernel_ * kernel_;

  Tensor dx(Shape{last_batch_, in_c_, last_h_, last_w_});
  Tensor dcol(Shape{col_rows, out_plane});
  for (std::size_t bi = 0; bi < last_batch_; ++bi) {
    // View this item's output gradient as a [out_c, out_plane] matrix.
    Tensor dy_mat(Shape{out_c_, out_plane},
                  std::vector<float>(
                      grad_out.data() + bi * out_c_ * out_plane,
                      grad_out.data() + (bi + 1) * out_c_ * out_plane));
    // dW += dY · col^T
    ops::matmul_a_bt(dy_mat, cols_[bi], dw_, /*accumulate=*/true);
    // db += row sums of dY
    for (std::size_t oc = 0; oc < out_c_; ++oc) {
      db_[oc] += ops::sum(dy_mat.flat().subspan(oc * out_plane, out_plane));
    }
    // dcol = W^T · dY, then scatter back to image layout.
    ops::matmul_at_b(w_, dy_mat, dcol);
    col2im(dcol.data(), in_c_, last_h_, last_w_, kernel_, stride_, pad_, oh, ow,
           dx.data() + bi * in_c_ * last_h_ * last_w_);
  }
  return dx;
}

void Conv2D::write_spec(BinaryWriter& w) const {
  w.write_varint(in_c_);
  w.write_varint(out_c_);
  w.write_varint(kernel_);
  w.write_varint(stride_);
  w.write_varint(pad_);
  w.write_string(init_name(scheme_));
}

std::unique_ptr<Layer> Conv2D::clone() const {
  return std::make_unique<Conv2D>(*this);
}

}  // namespace vcdl
