# Empty dependencies file for volunteer_churn.
# This may be replaced when dependencies are built.
