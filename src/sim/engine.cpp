#include "sim/engine.hpp"

#include <algorithm>

#include "common/dary_heap.hpp"

namespace vcdl {

EventId SimEngine::schedule(SimTime delay, EventFn fn) {
  VCDL_CHECK(delay >= 0.0, "SimEngine::schedule: negative delay");
  return schedule_at(now_ + delay, std::move(fn));
}

EventId SimEngine::schedule_at(SimTime when, EventFn fn) {
  VCDL_CHECK(when >= now_, "SimEngine::schedule_at: time in the past");
  VCDL_CHECK(fn != nullptr, "SimEngine::schedule_at: null callback");
  const std::uint64_t seq = next_seq_++;
  const std::uint32_t slot = acquire_slot();
  slots_[slot].seq = seq;
  slots_[slot].fn = std::move(fn);
  insert_entry(Entry{when, seq, slot});
  ++live_;
  return EventId{seq, slot};
}

void SimEngine::insert_entry(const Entry& e) {
  const std::uint64_t b = bucket_of(e.time);
  ++total_entries_;
  if (b == active_bucket_) {
    dary_push<kHeapArity>(active_, e, EntryAfter{});
    return;
  }
  if (b < active_bucket_) {
    // The clock was parked mid-bucket by run_until and a new event landed
    // behind the active cursor. Every bucket before active_bucket_ is empty
    // (the cursor only advances over drained buckets), so regressing is just:
    // shelve the active heap back into its ring slot and restart from b.
    --total_entries_;  // re-inserted below via activate + push
    auto& shelf = ring_[active_bucket_ % kBuckets];
    ring_count_ += active_.size();
    shelf.insert(shelf.end(), active_.begin(), active_.end());
    active_.clear();
    activate_bucket(b);
    dary_push<kHeapArity>(active_, e, EntryAfter{});
    ++total_entries_;
    return;
  }
  if (b < active_bucket_ + kBuckets) {
    ring_[b % kBuckets].push_back(e);
    ++ring_count_;
    return;
  }
  dary_push<kHeapArity>(far_, e, EntryAfter{});
}

void SimEngine::activate_bucket(std::uint64_t bucket) {
  active_bucket_ = bucket;
  auto& slot = ring_[bucket % kBuckets];
  // A slot can mix entries for this bucket with entries for bucket+kBuckets
  // (scheduled after a window regression); keep the future lap's behind.
  std::size_t kept = 0;
  for (Entry& e : slot) {
    if (bucket_of(e.time) == bucket) {
      active_.push_back(e);
    } else {
      slot[kept++] = e;
    }
  }
  slot.resize(kept);
  ring_count_ -= active_.size();
  dary_make<kHeapArity>(active_, EntryAfter{});
}

void SimEngine::refill_from_far() {
  const std::uint64_t window_end = active_bucket_ + kBuckets;  // exclusive
  while (!far_.empty() && bucket_of(far_.front().time) < window_end) {
    const Entry e = dary_pop<kHeapArity>(far_, EntryAfter{});
    const std::uint64_t b = bucket_of(e.time);
    if (b == active_bucket_) {
      dary_push<kHeapArity>(active_, e, EntryAfter{});
    } else {
      ring_[b % kBuckets].push_back(e);
      ++ring_count_;
    }
  }
}

std::uint32_t SimEngine::acquire_slot() {
  if (free_head_ != kNoSlot) {
    const std::uint32_t slot = free_head_;
    free_head_ = slots_[slot].next_free;
    return slot;
  }
  VCDL_CHECK(slots_.size() < kNoSlot, "SimEngine: event slot space exhausted");
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void SimEngine::release_slot(std::uint32_t slot) {
  slots_[slot].seq = 0;
  slots_[slot].fn = nullptr;  // drop the closure now, not at slot reuse
  slots_[slot].next_free = free_head_;
  free_head_ = slot;
}

bool SimEngine::cancel(EventId id) {
  if (id.seq == 0 || id.slot >= slots_.size() ||
      slots_[id.slot].seq != id.seq) {
    return false;  // already fired, already cancelled, or a stale handle
  }
  release_slot(id.slot);
  --live_;
  ++cancelled_count_;  // queue entry becomes stale; skipped on pop
  maybe_compact();
  return true;
}

void SimEngine::maybe_compact() {
  // Long-dated events scheduled and cancelled over and over (client
  // availability timers, deadline checks) would otherwise pile their stale
  // entries up until their far-future timestamps naturally pop.
  if (total_entries_ < kCompactFloor ||
      cancelled_count_ * 2 <= total_entries_) {
    return;
  }
  const auto stale = [this](const Entry& e) {
    return slots_[e.slot].seq != e.seq;
  };
  total_entries_ -= std::erase_if(active_, stale);
  dary_make<kHeapArity>(active_, EntryAfter{});
  for (auto& slot : ring_) {
    const std::size_t dropped = std::erase_if(slot, stale);
    total_entries_ -= dropped;
    ring_count_ -= dropped;
  }
  total_entries_ -= std::erase_if(far_, stale);
  dary_make<kHeapArity>(far_, EntryAfter{});
  cancelled_count_ = 0;
  ++compactions_;
}

bool SimEngine::pop_next(Entry& out) {
  while (total_entries_ > 0) {
    if (active_.empty()) {
      // Advance the window to the next bucket holding anything. With an
      // empty ring, jump straight to the earliest far event's bucket.
      if (ring_count_ == 0 && far_.empty()) return false;  // all stale? no:
      // total_entries_ counts active+ring+far, so something exists below.
      std::uint64_t next = active_bucket_ + 1;
      if (ring_count_ == 0) {
        next = std::max(next, bucket_of(far_.front().time));
      }
      // Hunt for the next nonempty ring slot, refilling from the far heap
      // as each new bucket enters the window. Bounded: within kBuckets
      // steps either a ring slot has entries or the far refill lands some.
      while (true) {
        activate_bucket(next);
        refill_from_far();
        if (!active_.empty()) break;
        if (ring_count_ == 0) {
          if (far_.empty()) return false;  // unreachable: total_entries_ > 0
          next = std::max(next + 1, bucket_of(far_.front().time));
        } else {
          ++next;
        }
      }
    }
    const Entry top = dary_pop<kHeapArity>(active_, EntryAfter{});
    --total_entries_;
    if (!active_.empty()) {
      // The next event's callback slot is known now; start pulling it in
      // while the current callback runs (it went cold since scheduling).
      __builtin_prefetch(&slots_[active_.front().slot]);
    }
    if (slots_[top.slot].seq != top.seq) {
      --cancelled_count_;  // stale (cancelled) entry
      continue;
    }
    out = top;
    return true;
  }
  return false;
}

EventFn SimEngine::take_callback(const Entry& e) {
  EventFn fn = std::move(slots_[e.slot].fn);
  release_slot(e.slot);
  --live_;
  ++executed_;
  return fn;
}

SimTime SimEngine::run() {
  Entry e;
  while (pop_next(e)) {
    now_ = e.time;
    take_callback(e)();
  }
  return now_;
}

SimTime SimEngine::run_until(SimTime until) {
  Entry e;
  while (pop_next(e)) {
    if (e.time > until) {
      // Put it back: not yet due. (Re-insert preserves ordering; the seq is
      // unchanged so FIFO order within a timestamp is intact.)
      insert_entry(e);
      now_ = until;
      return now_;
    }
    now_ = e.time;
    take_callback(e)();
  }
  now_ = until;
  return now_;
}

bool SimEngine::step() {
  Entry e;
  if (!pop_next(e)) return false;
  now_ = e.time;
  take_callback(e)();
  return true;
}

}  // namespace vcdl
