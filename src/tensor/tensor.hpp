// Dense row-major float tensor.
//
// This is the numeric substrate for the neural-network stack: a contiguous,
// owning, row-major array with an explicit shape. It is deliberately small —
// the layers only need 1-D/2-D/4-D views, elementwise kernels and GEMM — and
// keeps all bounds checking in debug builds only so the training hot path is
// tight.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <numeric>
#include <span>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace vcdl {

class Rng;

/// Minimal STL allocator handing out cache-line-aligned (64-byte) storage.
/// Tensor data lives behind it for two reasons: vector kernels can assume no
/// tensor straddles a line it shares with another allocation, and — the one
/// that is load-bearing for correctness of *scaling* — per-chunk gradient
/// accumulators (Conv2D's partial dw/db tensors) can never false-share a
/// cache line with an adjacent chunk's accumulator, however small they are.
template <typename T>
struct CacheAlignedAllocator {
  using value_type = T;
  static constexpr std::size_t alignment = 64;

  CacheAlignedAllocator() = default;
  template <typename U>
  CacheAlignedAllocator(const CacheAlignedAllocator<U>&) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{alignment}));
  }
  void deallocate(T* p, std::size_t n) {
    ::operator delete(static_cast<void*>(p), n * sizeof(T),
                      std::align_val_t{alignment});
  }

  template <typename U>
  friend bool operator==(const CacheAlignedAllocator&,
                         const CacheAlignedAllocator<U>&) {
    return true;
  }
};

/// Tensor backing storage: a float vector with cache-line-aligned data().
using AlignedFloatVec = std::vector<float, CacheAlignedAllocator<float>>;

/// Tensor shape (up to rank 4 used in practice; arbitrary rank supported).
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<std::size_t> dims) : dims_(dims) {}
  explicit Shape(std::vector<std::size_t> dims) : dims_(std::move(dims)) {}

  std::size_t rank() const { return dims_.size(); }
  std::size_t operator[](std::size_t i) const {
    VCDL_DCHECK(i < dims_.size(), "Shape index out of range");
    return dims_[i];
  }
  std::size_t numel() const {
    return std::accumulate(dims_.begin(), dims_.end(), std::size_t{1},
                           std::multiplies<>());
  }
  const std::vector<std::size_t>& dims() const { return dims_; }
  std::string to_string() const;

  friend bool operator==(const Shape& a, const Shape& b) {
    return a.dims_ == b.dims_;
  }

 private:
  std::vector<std::size_t> dims_;
};

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape) : shape_(std::move(shape)), data_(shape_.numel(), 0.0f) {}
  Tensor(Shape shape, std::vector<float> data);

  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor full(Shape shape, float value);
  /// I.i.d. N(mean, stddev) entries.
  static Tensor randn(Shape shape, Rng& rng, float mean = 0.0f, float stddev = 1.0f);
  /// I.i.d. U(lo, hi) entries.
  static Tensor rand(Shape shape, Rng& rng, float lo = 0.0f, float hi = 1.0f);

  const Shape& shape() const { return shape_; }
  std::size_t numel() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  std::span<float> flat() { return {data_}; }
  std::span<const float> flat() const { return {data_}; }
  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& operator[](std::size_t i) {
    VCDL_DCHECK(i < data_.size(), "Tensor flat index out of range");
    return data_[i];
  }
  float operator[](std::size_t i) const {
    VCDL_DCHECK(i < data_.size(), "Tensor flat index out of range");
    return data_[i];
  }

  /// 2-D accessor: element (r, c) of a rank-2 tensor.
  float& at(std::size_t r, std::size_t c) {
    VCDL_DCHECK(shape_.rank() == 2, "at(r,c) requires rank 2");
    return data_[r * shape_[1] + c];
  }
  float at(std::size_t r, std::size_t c) const {
    VCDL_DCHECK(shape_.rank() == 2, "at(r,c) requires rank 2");
    return data_[r * shape_[1] + c];
  }

  void fill(float value) { std::fill(data_.begin(), data_.end(), value); }

  /// Reshapes in place, keeping the existing allocation whenever the vector
  /// capacity suffices (contents are unspecified afterwards). This is what
  /// scratch buffers use to avoid per-step allocation churn.
  void resize(const Shape& new_shape) {
    shape_ = new_shape;
    data_.resize(shape_.numel());
  }

  /// Reinterprets the buffer with a new shape of identical element count.
  Tensor reshaped(Shape new_shape) const;

 private:
  Shape shape_;
  AlignedFloatVec data_;
};

}  // namespace vcdl
