#include "nn/activations.hpp"

#include <cmath>

namespace vcdl {

Tensor ReLU::forward(const Tensor& x, ExecContext& /*ctx*/, bool training) {
  Tensor y = x;
  auto yf = y.flat();
  if (training) {
    mask_ = Tensor(x.shape());
    auto mf = mask_.flat();
    for (std::size_t i = 0; i < yf.size(); ++i) {
      if (yf[i] > 0.0f) {
        mf[i] = 1.0f;
      } else {
        yf[i] = 0.0f;
        mf[i] = 0.0f;
      }
    }
  } else {
    mask_ = Tensor();
    for (auto& v : yf) {
      if (v <= 0.0f) v = 0.0f;
    }
  }
  return y;
}

Tensor ReLU::backward(const Tensor& grad_out, ExecContext& /*ctx*/) {
  VCDL_CHECK(grad_out.shape() == mask_.shape(),
             "ReLU::backward before training-mode forward or shape mismatch");
  Tensor dx = grad_out;
  auto df = dx.flat();
  auto mf = mask_.flat();
  for (std::size_t i = 0; i < df.size(); ++i) df[i] *= mf[i];
  return dx;
}

void ReLU::write_spec(BinaryWriter& /*w*/) const {}
std::unique_ptr<Layer> ReLU::clone() const { return std::make_unique<ReLU>(*this); }

Tensor Tanh::forward(const Tensor& x, ExecContext& /*ctx*/, bool training) {
  Tensor y = x;
  for (auto& v : y.flat()) v = std::tanh(v);
  last_y_ = training ? y : Tensor();
  return y;
}

Tensor Tanh::backward(const Tensor& grad_out, ExecContext& /*ctx*/) {
  VCDL_CHECK(grad_out.shape() == last_y_.shape(),
             "Tanh::backward before training-mode forward or shape mismatch");
  Tensor dx = grad_out;
  auto df = dx.flat();
  auto yf = last_y_.flat();
  for (std::size_t i = 0; i < df.size(); ++i) df[i] *= 1.0f - yf[i] * yf[i];
  return dx;
}

void Tanh::write_spec(BinaryWriter& /*w*/) const {}
std::unique_ptr<Layer> Tanh::clone() const { return std::make_unique<Tanh>(*this); }

Tensor Sigmoid::forward(const Tensor& x, ExecContext& /*ctx*/, bool training) {
  Tensor y = x;
  for (auto& v : y.flat()) v = 1.0f / (1.0f + std::exp(-v));
  last_y_ = training ? y : Tensor();
  return y;
}

Tensor Sigmoid::backward(const Tensor& grad_out, ExecContext& /*ctx*/) {
  VCDL_CHECK(grad_out.shape() == last_y_.shape(),
             "Sigmoid::backward before training-mode forward or shape mismatch");
  Tensor dx = grad_out;
  auto df = dx.flat();
  auto yf = last_y_.flat();
  for (std::size_t i = 0; i < df.size(); ++i) df[i] *= yf[i] * (1.0f - yf[i]);
  return dx;
}

void Sigmoid::write_spec(BinaryWriter& /*w*/) const {}
std::unique_ptr<Layer> Sigmoid::clone() const {
  return std::make_unique<Sigmoid>(*this);
}

}  // namespace vcdl
