#include <memory>

#include "storage/eventual_store.hpp"
#include "storage/strong_store.hpp"

namespace vcdl {

std::unique_ptr<KvStore> make_store(const std::string& kind) {
  if (kind == "strong") return std::make_unique<StrongStore>();
  if (kind == "eventual") return std::make_unique<EventualStore>();
  throw InvalidArgument("make_store: unknown store kind '" + kind +
                        "' (expected 'strong' or 'eventual')");
}

}  // namespace vcdl
