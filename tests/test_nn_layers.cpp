// Per-layer behaviours plus spot gradient checks through the shared
// finite-difference checker (testing/gradcheck.hpp). The exhaustive
// every-registered-kind gradient grid lives in tests/test_properties.cpp;
// the spot checks here keep odd configurations (strided conv, deeper
// residual) covered in tier 1.
#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/misc_layers.hpp"
#include "nn/pool2d.hpp"
#include "tensor/ops.hpp"
#include "testing/gradcheck.hpp"

namespace vcdl {
namespace {

void check_gradients(Layer& layer, const Tensor& x) {
  Rng rng(1234);
  const testing::GradCheckResult res =
      testing::check_layer_gradients(layer, x, rng);
  EXPECT_GT(res.checked, 0u);
  EXPECT_TRUE(res.passed) << res.detail;
}

TEST(Dense, GradientCheck) {
  Rng rng(1);
  Dense layer(6, 4, Init::he_normal, rng);
  check_gradients(layer, Tensor::randn(Shape{3, 6}, rng));
}

TEST(Dense, ForwardMatchesManual) {
  Rng rng(2);
  Dense layer(2, 2, Init::zeros, rng);
  layer.params()[0]->at(0, 0) = 1.0f;  // W = [[1, 2], [3, 4]]
  layer.params()[0]->at(0, 1) = 2.0f;
  layer.params()[0]->at(1, 0) = 3.0f;
  layer.params()[0]->at(1, 1) = 4.0f;
  (*layer.params()[1])[0] = 0.5f;  // b = [0.5, -0.5]
  (*layer.params()[1])[1] = -0.5f;
  const Tensor x(Shape{1, 2}, {1.0f, 1.0f});
  const Tensor y = layer.forward(x, false);
  EXPECT_FLOAT_EQ(y[0], 4.5f);
  EXPECT_FLOAT_EQ(y[1], 5.5f);
}

TEST(Dense, RejectsWrongInputWidth) {
  Rng rng(3);
  Dense layer(4, 2, Init::he_normal, rng);
  EXPECT_THROW(layer.forward(Tensor(Shape{1, 5}), false), Error);
}

TEST(Conv2D, GradientCheck) {
  Rng rng(4);
  Conv2D layer(2, 3, 3, 1, 1, Init::he_normal, rng);
  check_gradients(layer, Tensor::randn(Shape{2, 2, 5, 5}, rng));
}

TEST(Conv2D, StridedGradientCheck) {
  Rng rng(5);
  Conv2D layer(1, 2, 3, 2, 1, Init::he_normal, rng);
  check_gradients(layer, Tensor::randn(Shape{1, 1, 6, 6}, rng));
}

TEST(Conv2D, OutputShape) {
  Rng rng(6);
  Conv2D same(3, 8, 3, 1, 1, Init::he_normal, rng);
  const Tensor y = same.forward(Tensor(Shape{2, 3, 12, 12}), false);
  EXPECT_TRUE(y.shape() == (Shape{2, 8, 12, 12}));
  Conv2D strided(3, 4, 3, 2, 1, Init::he_normal, rng);
  const Tensor z = strided.forward(Tensor(Shape{1, 3, 8, 8}), false);
  EXPECT_TRUE(z.shape() == (Shape{1, 4, 4, 4}));
}

TEST(Conv2D, IdentityKernelReproducesInput) {
  Rng rng(7);
  Conv2D layer(1, 1, 3, 1, 1, Init::zeros, rng);
  // Kernel = delta at center.
  (*layer.params()[0])[4] = 1.0f;
  const Tensor x = Tensor::randn(Shape{1, 1, 4, 4}, rng);
  const Tensor y = layer.forward(x, false);
  EXPECT_LT(ops::max_abs_diff(x.flat(), y.flat()), 1e-6f);
}

TEST(ReLU, GradientCheckAndMasking) {
  Rng rng(8);
  ReLU layer;
  const Tensor x(Shape{2, 3}, {1.0f, -1.0f, 0.5f, -0.5f, 2.0f, -2.0f});
  const Tensor y = layer.forward(x, true);
  EXPECT_FLOAT_EQ(y[1], 0.0f);
  EXPECT_FLOAT_EQ(y[0], 1.0f);
  const Tensor g = layer.backward(Tensor::full(Shape{2, 3}, 1.0f));
  EXPECT_FLOAT_EQ(g[0], 1.0f);
  EXPECT_FLOAT_EQ(g[1], 0.0f);
}

TEST(Tanh, GradientCheck) {
  Rng rng(9);
  Tanh layer;
  check_gradients(layer, Tensor::randn(Shape{2, 5}, rng));
}

TEST(Sigmoid, GradientCheck) {
  Rng rng(10);
  Sigmoid layer;
  check_gradients(layer, Tensor::randn(Shape{2, 5}, rng));
}

TEST(MaxPool2D, ForwardSelectsMaxAndRoutesGradient) {
  MaxPool2D layer(2);
  const Tensor x(Shape{1, 1, 2, 2}, {1.0f, 9.0f, 3.0f, 2.0f});
  const Tensor y = layer.forward(x, /*training=*/true);
  ASSERT_EQ(y.numel(), 1u);
  EXPECT_FLOAT_EQ(y[0], 9.0f);
  const Tensor g = layer.backward(Tensor::full(Shape{1, 1, 1, 1}, 5.0f));
  EXPECT_FLOAT_EQ(g[1], 5.0f);
  EXPECT_FLOAT_EQ(g[0], 0.0f);
  EXPECT_FLOAT_EQ(g[2], 0.0f);
}

TEST(MaxPool2D, InferenceForwardDropsCacheAndRejectsBackward) {
  MaxPool2D layer(2);
  const Tensor x(Shape{1, 1, 2, 2}, {1.0f, 9.0f, 3.0f, 2.0f});
  (void)layer.forward(x, /*training=*/true);
  EXPECT_GT(layer.cache_bytes(), 0u);
  const Tensor y = layer.forward(x, /*training=*/false);
  EXPECT_FLOAT_EQ(y[0], 9.0f);  // same output either mode
  EXPECT_EQ(layer.cache_bytes(), 0u);
  EXPECT_THROW(layer.backward(Tensor::full(Shape{1, 1, 1, 1}, 5.0f)), Error);
}

TEST(MaxPool2D, RejectsIndivisibleInput) {
  MaxPool2D layer(2);
  EXPECT_THROW(layer.forward(Tensor(Shape{1, 1, 3, 4}), false), Error);
}

TEST(GlobalAvgPool, ForwardAndBackward) {
  GlobalAvgPool layer;
  const Tensor x(Shape{1, 2, 2, 2}, {1, 2, 3, 4, 10, 20, 30, 40});
  const Tensor y = layer.forward(x, false);
  EXPECT_FLOAT_EQ(y[0], 2.5f);
  EXPECT_FLOAT_EQ(y[1], 25.0f);
  const Tensor g = layer.backward(Tensor(Shape{1, 2}, {4.0f, 8.0f}));
  EXPECT_FLOAT_EQ(g[0], 1.0f);   // 4 / 4
  EXPECT_FLOAT_EQ(g[4], 2.0f);   // 8 / 4
}

TEST(Flatten, RoundTripShapes) {
  Flatten layer;
  const Tensor x = Tensor::full(Shape{2, 3, 4, 5}, 1.0f);
  const Tensor y = layer.forward(x, false);
  EXPECT_TRUE(y.shape() == (Shape{2, 60}));
  const Tensor g = layer.backward(y);
  EXPECT_TRUE(g.shape() == x.shape());
}

TEST(Dropout, InferenceIsIdentity) {
  Dropout layer(0.5, 42);
  Rng rng(11);
  const Tensor x = Tensor::randn(Shape{4, 4}, rng);
  const Tensor y = layer.forward(x, /*training=*/false);
  EXPECT_LT(ops::max_abs_diff(x.flat(), y.flat()), 1e-9f);
}

TEST(Dropout, TrainingZerosAndRescales) {
  Dropout layer(0.5, 42);
  const Tensor x = Tensor::full(Shape{100, 10}, 1.0f);
  const Tensor y = layer.forward(x, true);
  std::size_t zeros = 0;
  double sum = 0.0;
  for (const float v : y.flat()) {
    if (v == 0.0f) {
      ++zeros;
    } else {
      EXPECT_FLOAT_EQ(v, 2.0f);  // 1 / keep_prob
      sum += v;
    }
  }
  EXPECT_NEAR(static_cast<double>(zeros) / y.numel(), 0.5, 0.05);
  EXPECT_NEAR(sum / y.numel(), 1.0, 0.1);  // expectation preserved
}

TEST(Dropout, RejectsBadRate) {
  EXPECT_THROW(Dropout(1.0, 1), Error);
  EXPECT_THROW(Dropout(-0.1, 1), Error);
}

TEST(Residual, GradientCheck) {
  Rng rng(12);
  std::vector<std::unique_ptr<Layer>> inner;
  inner.push_back(std::make_unique<Dense>(5, 5, Init::he_normal, rng));
  inner.push_back(std::make_unique<Tanh>());
  Residual layer(std::move(inner));
  check_gradients(layer, Tensor::randn(Shape{2, 5}, rng));
}

TEST(Residual, AddsIdentityPath) {
  Rng rng(13);
  std::vector<std::unique_ptr<Layer>> inner;
  inner.push_back(std::make_unique<Dense>(3, 3, Init::zeros, rng));
  Residual layer(std::move(inner));
  const Tensor x = Tensor::randn(Shape{1, 3}, rng);
  const Tensor y = layer.forward(x, false);
  // Zero inner weights ⇒ F(x) = 0 ⇒ y = x.
  EXPECT_LT(ops::max_abs_diff(x.flat(), y.flat()), 1e-6f);
}

TEST(Residual, RejectsShapeChangingInner) {
  Rng rng(14);
  std::vector<std::unique_ptr<Layer>> inner;
  inner.push_back(std::make_unique<Dense>(3, 4, Init::he_normal, rng));
  Residual layer(std::move(inner));
  EXPECT_THROW(layer.forward(Tensor(Shape{1, 3}), false), Error);
}

TEST(Layers, CloneIsDeepCopy) {
  Rng rng(15);
  Dense layer(3, 3, Init::he_normal, rng);
  auto copy = layer.clone();
  (*layer.params()[0])[0] += 100.0f;
  auto* copy_dense = dynamic_cast<Dense*>(copy.get());
  ASSERT_NE(copy_dense, nullptr);
  EXPECT_NE((*layer.params()[0])[0], (*copy_dense->params()[0])[0]);
}

TEST(Init, HeNormalVarianceMatchesFanIn) {
  Rng rng(16);
  Tensor w(Shape{200, 100});
  initialize(w, Init::he_normal, 200, 100, rng);
  double sq = 0.0;
  for (const float v : w.flat()) sq += static_cast<double>(v) * v;
  EXPECT_NEAR(sq / w.numel(), 2.0 / 200.0, 2.0 / 200.0 * 0.1);
}

TEST(Init, NamesRoundTrip) {
  for (const Init scheme : {Init::zeros, Init::he_normal, Init::he_uniform,
                            Init::xavier_normal, Init::xavier_uniform}) {
    EXPECT_EQ(init_from_name(init_name(scheme)), scheme);
  }
  EXPECT_THROW(init_from_name("bogus"), Error);
}

}  // namespace
}  // namespace vcdl
