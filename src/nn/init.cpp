#include "nn/init.hpp"

#include <cmath>

#include "common/rng.hpp"

namespace vcdl {

void initialize(Tensor& w, Init scheme, std::size_t fan_in, std::size_t fan_out,
                Rng& rng) {
  VCDL_CHECK(fan_in > 0 && fan_out > 0, "initialize: zero fan");
  const double fi = static_cast<double>(fan_in);
  const double fo = static_cast<double>(fan_out);
  switch (scheme) {
    case Init::zeros:
      w.fill(0.0f);
      return;
    case Init::he_normal: {
      const double s = std::sqrt(2.0 / fi);
      for (auto& v : w.flat()) v = static_cast<float>(rng.normal(0.0, s));
      return;
    }
    case Init::he_uniform: {
      const double b = std::sqrt(6.0 / fi);
      for (auto& v : w.flat()) v = static_cast<float>(rng.uniform(-b, b));
      return;
    }
    case Init::xavier_normal: {
      const double s = std::sqrt(2.0 / (fi + fo));
      for (auto& v : w.flat()) v = static_cast<float>(rng.normal(0.0, s));
      return;
    }
    case Init::xavier_uniform: {
      const double b = std::sqrt(6.0 / (fi + fo));
      for (auto& v : w.flat()) v = static_cast<float>(rng.uniform(-b, b));
      return;
    }
  }
  throw InvalidArgument("initialize: unknown scheme");
}

const char* init_name(Init scheme) {
  switch (scheme) {
    case Init::zeros: return "zeros";
    case Init::he_normal: return "he_normal";
    case Init::he_uniform: return "he_uniform";
    case Init::xavier_normal: return "xavier_normal";
    case Init::xavier_uniform: return "xavier_uniform";
  }
  return "?";
}

Init init_from_name(const std::string& name) {
  if (name == "zeros") return Init::zeros;
  if (name == "he_normal") return Init::he_normal;
  if (name == "he_uniform") return Init::he_uniform;
  if (name == "xavier_normal") return Init::xavier_normal;
  if (name == "xavier_uniform") return Init::xavier_uniform;
  throw InvalidArgument("init_from_name: unknown initializer '" + name + "'");
}

}  // namespace vcdl
