#include "tensor/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <tuple>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "tensor/ops.hpp"

namespace vcdl {
namespace {

TEST(Shape, NumelAndRank) {
  const Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3u);
  EXPECT_EQ(s.numel(), 24u);
  EXPECT_EQ(s[1], 3u);
  EXPECT_EQ(s.to_string(), "[2, 3, 4]");
}

TEST(Shape, EmptyShapeHasOneElement) {
  const Shape s;
  EXPECT_EQ(s.rank(), 0u);
  EXPECT_EQ(s.numel(), 1u);
}

TEST(Tensor, ZeroInitialized) {
  const Tensor t(Shape{3, 3});
  for (const float v : t.flat()) EXPECT_EQ(v, 0.0f);
}

TEST(Tensor, FullAndFill) {
  Tensor t = Tensor::full(Shape{4}, 2.5f);
  for (const float v : t.flat()) EXPECT_EQ(v, 2.5f);
  t.fill(-1.0f);
  for (const float v : t.flat()) EXPECT_EQ(v, -1.0f);
}

TEST(Tensor, ConstructFromDataChecksSize) {
  EXPECT_THROW(Tensor(Shape{2, 2}, {1.0f, 2.0f}), Error);
  const Tensor t(Shape{2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(t.at(1, 0), 3.0f);
}

TEST(Tensor, RandnDeterministic) {
  Rng a(5), b(5);
  const Tensor x = Tensor::randn(Shape{100}, a);
  const Tensor y = Tensor::randn(Shape{100}, b);
  for (std::size_t i = 0; i < x.numel(); ++i) EXPECT_EQ(x[i], y[i]);
}

TEST(Tensor, ReshapedPreservesData) {
  const Tensor t(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor r = t.reshaped(Shape{3, 2});
  EXPECT_EQ(r.at(2, 1), 6.0f);
  EXPECT_THROW(t.reshaped(Shape{4, 2}), Error);
}

TEST(Ops, AxpyScaleAddSubMul) {
  std::vector<float> x = {1, 2, 3};
  std::vector<float> y = {10, 20, 30};
  ops::axpy(2.0f, x, y);
  EXPECT_EQ(y, (std::vector<float>{12, 24, 36}));
  ops::scale(y, 0.5f);
  EXPECT_EQ(y, (std::vector<float>{6, 12, 18}));
  std::vector<float> out(3);
  ops::add(x, y, out);
  EXPECT_EQ(out, (std::vector<float>{7, 14, 21}));
  ops::sub(y, x, out);
  EXPECT_EQ(out, (std::vector<float>{5, 10, 15}));
  ops::mul(x, x, out);
  EXPECT_EQ(out, (std::vector<float>{1, 4, 9}));
}

TEST(Ops, BlendIsConvexCombination) {
  const std::vector<float> server = {1.0f, 0.0f};
  const std::vector<float> client = {0.0f, 1.0f};
  std::vector<float> out(2);
  ops::blend(0.75f, server, client, out);
  EXPECT_FLOAT_EQ(out[0], 0.75f);
  EXPECT_FLOAT_EQ(out[1], 0.25f);
}

TEST(Ops, BlendInPlaceOnServer) {
  std::vector<float> server = {2.0f};
  const std::vector<float> client = {4.0f};
  ops::blend(0.5f, server, client, server);
  EXPECT_FLOAT_EQ(server[0], 3.0f);
}

TEST(Ops, Reductions) {
  const std::vector<float> v = {3, -4, 0};
  EXPECT_FLOAT_EQ(ops::sum(v), -1.0f);
  EXPECT_FLOAT_EQ(ops::dot(v, v), 25.0f);
  EXPECT_FLOAT_EQ(ops::norm2(v), 5.0f);
  EXPECT_EQ(ops::argmax(v), 0u);
  const std::vector<float> w = {3, 4, 0};
  EXPECT_FLOAT_EQ(ops::max_abs_diff(v, w), 8.0f);
}

TEST(Ops, ArgmaxFirstOnTie) {
  const std::vector<float> v = {1, 5, 5, 2};
  EXPECT_EQ(ops::argmax(v), 1u);
}

TEST(Ops, SizeMismatchThrows) {
  std::vector<float> a = {1, 2}, b = {1};
  EXPECT_THROW(ops::axpy(1.0f, a, b), Error);
  EXPECT_THROW(ops::dot(a, b), Error);
}

// Reference GEMM for cross-checking.
Tensor naive_matmul(const Tensor& a, const Tensor& b) {
  const std::size_t m = a.shape()[0], k = a.shape()[1], n = b.shape()[1];
  Tensor c(Shape{m, n});
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0;
      for (std::size_t kk = 0; kk < k; ++kk) {
        acc += static_cast<double>(a.at(i, kk)) * b.at(kk, j);
      }
      c.at(i, j) = static_cast<float>(acc);
    }
  }
  return c;
}

Tensor transpose(const Tensor& t) {
  const std::size_t r = t.shape()[0], c = t.shape()[1];
  Tensor out(Shape{c, r});
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) out.at(j, i) = t.at(i, j);
  }
  return out;
}

class MatmulSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t, std::size_t>> {};

TEST_P(MatmulSweep, MatchesNaive) {
  const auto [m, k, n] = GetParam();
  Rng rng(m * 131 + k * 17 + n);
  const Tensor a = Tensor::randn(Shape{m, k}, rng);
  const Tensor b = Tensor::randn(Shape{k, n}, rng);
  Tensor c;
  ops::matmul(a, b, c);
  const Tensor ref = naive_matmul(a, b);
  EXPECT_LT(ops::max_abs_diff(c.flat(), ref.flat()), 1e-4f);
}

TEST_P(MatmulSweep, TransposedVariantsMatch) {
  const auto [m, k, n] = GetParam();
  Rng rng(m + k + n + 99);
  const Tensor a = Tensor::randn(Shape{m, k}, rng);
  const Tensor b = Tensor::randn(Shape{k, n}, rng);
  const Tensor ref = naive_matmul(a, b);

  // A^T stored as (k x m): matmul_at_b(a_t, b) == a * b.
  Tensor c1;
  ops::matmul_at_b(transpose(a), b, c1);
  EXPECT_LT(ops::max_abs_diff(c1.flat(), ref.flat()), 1e-4f);

  // B^T stored as (n x k): matmul_a_bt(a, b_t) == a * b.
  Tensor c2;
  ops::matmul_a_bt(a, transpose(b), c2);
  EXPECT_LT(ops::max_abs_diff(c2.flat(), ref.flat()), 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(
    Dims, MatmulSweep,
    ::testing::Values(std::make_tuple(1u, 1u, 1u), std::make_tuple(2u, 3u, 4u),
                      std::make_tuple(7u, 5u, 3u), std::make_tuple(16u, 64u, 8u),
                      std::make_tuple(33u, 65u, 17u),
                      std::make_tuple(1u, 100u, 1u)));

TEST(Ops, MatmulAccumulate) {
  Rng rng(1);
  const Tensor a = Tensor::randn(Shape{3, 4}, rng);
  const Tensor b = Tensor::randn(Shape{4, 5}, rng);
  Tensor c = Tensor::full(Shape{3, 5}, 1.0f);
  ops::matmul(a, b, c, /*accumulate=*/true);
  Tensor expect = naive_matmul(a, b);
  for (auto& v : expect.flat()) v += 1.0f;
  EXPECT_LT(ops::max_abs_diff(c.flat(), expect.flat()), 1e-4f);
}

TEST(Ops, MatmulWithThreadPoolMatches) {
  Rng rng(2);
  const Tensor a = Tensor::randn(Shape{64, 32}, rng);
  const Tensor b = Tensor::randn(Shape{32, 48}, rng);
  Tensor serial, parallel;
  ops::matmul(a, b, serial);
  ThreadPool pool(4);
  ops::matmul(a, b, parallel, false, &pool);
  EXPECT_LT(ops::max_abs_diff(serial.flat(), parallel.flat()), 1e-5f);
}

TEST(Ops, MatmulDimensionMismatchThrows) {
  const Tensor a(Shape{2, 3});
  const Tensor b(Shape{4, 5});
  Tensor c;
  EXPECT_THROW(ops::matmul(a, b, c), Error);
}

// Regression: the zero-skip fast path dropped B's non-finite values when the
// matching A entry was 0, so 0 * NaN silently became 0. IEEE says NaN.
TEST(Ops, MatmulZeroTimesNaNPropagates) {
  Tensor a = Tensor::full(Shape{2, 3}, 1.0f);
  a.at(0, 1) = 0.0f;  // aligned against the poisoned B row below
  Tensor b = Tensor::full(Shape{3, 4}, 1.0f);
  b.at(1, 2) = std::numeric_limits<float>::quiet_NaN();
  Tensor c;
  ops::matmul(a, b, c);
  EXPECT_TRUE(std::isnan(c.at(0, 2)));
  EXPECT_TRUE(std::isnan(c.at(1, 2)));
  EXPECT_FLOAT_EQ(c.at(0, 0), 2.0f);  // unpoisoned columns unaffected
  EXPECT_FLOAT_EQ(c.at(1, 0), 3.0f);
}

TEST(Ops, MatmulZeroTimesInfIsNaN) {
  Tensor a = Tensor::full(Shape{1, 2}, 0.0f);
  Tensor b = Tensor::full(Shape{2, 1}, 1.0f);
  b.at(0, 0) = std::numeric_limits<float>::infinity();
  Tensor c;
  ops::matmul(a, b, c);
  EXPECT_TRUE(std::isnan(c.at(0, 0)));  // 0 * inf = NaN, not 0
}

TEST(Ops, MatmulAtBZeroTimesNaNPropagates) {
  Tensor a_t = Tensor::full(Shape{3, 2}, 1.0f);  // A^T, so A is 2x3
  a_t.at(1, 0) = 0.0f;                           // A(0,1) = 0
  Tensor b = Tensor::full(Shape{3, 2}, 1.0f);
  b.at(1, 1) = std::numeric_limits<float>::quiet_NaN();
  Tensor c;
  ops::matmul_at_b(a_t, b, c);
  EXPECT_TRUE(std::isnan(c.at(0, 1)));
  EXPECT_FLOAT_EQ(c.at(0, 0), 2.0f);
}

TEST(Ops, MatmulZeroSkipStillExactForFiniteInputs) {
  // Sparse A against finite B must keep taking the fast path and stay exact.
  Rng rng(7);
  Tensor a = Tensor::randn(Shape{9, 13}, rng);
  for (std::size_t i = 0; i < a.numel(); i += 3) a.flat()[i] = 0.0f;
  const Tensor b = Tensor::randn(Shape{13, 6}, rng);
  Tensor c;
  ops::matmul(a, b, c);
  const Tensor ref = naive_matmul(a, b);
  EXPECT_LT(ops::max_abs_diff(c.flat(), ref.flat()), 1e-4f);
}

void expect_bits_equal(std::span<const float> a, std::span<const float> b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "element " << i;
  }
}

TEST(Ops, MatViewMatmulMatchesTensorMatmul) {
  Rng rng(11);
  const Tensor a = Tensor::randn(Shape{5, 7}, rng);
  const Tensor b = Tensor::randn(Shape{7, 4}, rng);
  Tensor c_tensor, c_view;
  ops::matmul(a, b, c_tensor);
  ops::matmul(ops::view(a), ops::view(b), c_view);
  expect_bits_equal(c_tensor.flat(), c_view.flat());

  // A view over a sub-range of a larger buffer (no copy) works the same.
  Tensor big(Shape{2, a.numel()});
  std::copy(a.flat().begin(), a.flat().end(),
            big.flat().begin() + static_cast<std::ptrdiff_t>(a.numel()));
  const ops::MatView sub{big.data() + a.numel(), 5, 7};
  Tensor c_sub;
  ops::matmul(sub, ops::view(b), c_sub);
  expect_bits_equal(c_tensor.flat(), c_sub.flat());
}

TEST(Ops, MatViewTransposedVariantsMatchTensorOverloads) {
  Rng rng(13);
  const Tensor a = Tensor::randn(Shape{6, 5}, rng);
  const Tensor b = Tensor::randn(Shape{6, 3}, rng);  // for A^T * B
  Tensor r1, r2;
  ops::matmul_at_b(a, b, r1);
  ops::matmul_at_b(ops::view(a), ops::view(b), r2);
  expect_bits_equal(r1.flat(), r2.flat());

  const Tensor bt = Tensor::randn(Shape{4, 5}, rng);  // for A * B^T
  Tensor r3, r4;
  ops::matmul_a_bt(a, bt, r3);
  ops::matmul_a_bt(ops::view(a), ops::view(bt), r4);
  expect_bits_equal(r3.flat(), r4.flat());
}

}  // namespace
}  // namespace vcdl
