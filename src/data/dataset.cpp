#include "data/dataset.hpp"

namespace vcdl {
namespace {
constexpr std::uint32_t kMagic = 0x56434431;  // "VCD1"
}

Dataset::Dataset(std::size_t channels, std::size_t height, std::size_t width,
                 std::size_t classes)
    : channels_(channels), height_(height), width_(width), classes_(classes) {
  VCDL_CHECK(channels > 0 && height > 0 && width > 0 && classes > 0,
             "Dataset: bad dimensions");
}

void Dataset::add(std::span<const std::uint8_t> pixels, std::uint16_t label) {
  VCDL_CHECK(pixels.size() == pixels_per_image(),
             "Dataset::add: wrong pixel count");
  VCDL_CHECK(label < classes_, "Dataset::add: label out of range");
  pixels_.insert(pixels_.end(), pixels.begin(), pixels.end());
  labels_.push_back(label);
}

std::span<const std::uint8_t> Dataset::image(std::size_t i) const {
  VCDL_CHECK(i < size(), "Dataset::image: index out of range");
  return {pixels_.data() + i * pixels_per_image(), pixels_per_image()};
}

Dataset Dataset::subset(std::span<const std::size_t> indices) const {
  Dataset out(channels_, height_, width_, classes_);
  out.pixels_.reserve(indices.size() * pixels_per_image());
  out.labels_.reserve(indices.size());
  for (const std::size_t i : indices) out.add(image(i), label(i));
  return out;
}

Tensor Dataset::batch_tensor(std::size_t first, std::size_t count) const {
  VCDL_CHECK(first + count <= size(), "batch_tensor: range out of bounds");
  Tensor t(Shape{count, channels_, height_, width_});
  const std::size_t ppi = pixels_per_image();
  float* out = t.data();
  const std::uint8_t* in = pixels_.data() + first * ppi;
  for (std::size_t i = 0; i < count * ppi; ++i) {
    out[i] = static_cast<float>(in[i]) * (2.0f / 255.0f) - 1.0f;
  }
  return t;
}

std::span<const std::uint16_t> Dataset::batch_labels(std::size_t first,
                                                     std::size_t count) const {
  VCDL_CHECK(first + count <= size(), "batch_labels: range out of bounds");
  return {labels_.data() + first, count};
}

Tensor Dataset::gather_tensor(std::span<const std::size_t> indices) const {
  Tensor t(Shape{indices.size(), channels_, height_, width_});
  const std::size_t ppi = pixels_per_image();
  float* out = t.data();
  for (std::size_t n = 0; n < indices.size(); ++n) {
    const auto img = image(indices[n]);
    for (std::size_t i = 0; i < ppi; ++i) {
      out[n * ppi + i] = static_cast<float>(img[i]) * (2.0f / 255.0f) - 1.0f;
    }
  }
  return t;
}

Blob Dataset::encode() const {
  BinaryWriter w;
  w.write(kMagic);
  w.write_varint(channels_);
  w.write_varint(height_);
  w.write_varint(width_);
  w.write_varint(classes_);
  w.write_span(std::span<const std::uint16_t>(labels_));
  w.write_span(std::span<const std::uint8_t>(pixels_));
  return w.take();
}

Dataset Dataset::decode(const Blob& blob) {
  BinaryReader r(blob);
  if (r.read<std::uint32_t>() != kMagic) {
    throw CorruptData("Dataset::decode: bad magic");
  }
  const auto channels = r.read_varint();
  const auto height = r.read_varint();
  const auto width = r.read_varint();
  const auto classes = r.read_varint();
  Dataset out(channels, height, width, classes);
  out.labels_ = r.read_vector<std::uint16_t>();
  out.pixels_ = r.read_vector<std::uint8_t>();
  if (out.pixels_.size() != out.labels_.size() * out.pixels_per_image()) {
    throw CorruptData("Dataset::decode: pixel/label count mismatch");
  }
  return out;
}

}  // namespace vcdl
