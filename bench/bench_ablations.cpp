// Design-choice ablations (DESIGN.md §4) — not a paper figure.
//
// Quantifies the system features the paper asserts qualitatively:
//   1. shard policy: IID vs worst-case label-skew (client drift amplifier);
//   2. sticky-file caching: bytes over the wire with and without it;
//   3. workunit replication: redundancy cost vs timeout robustness;
//   4. the §V GPU-fleet extension: time and cost vs the CPU fleet;
//   5. wire codec: full blobs vs lossless deltas vs 8-bit quantized uploads
//      (docs/SIMULATION.md §4b).
#include <algorithm>
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "sim/cost.hpp"

int main(int argc, char** argv) {
  using namespace vcdl;
  const Config cfg = Config::from_args(argc, argv);
  bench::print_header("Ablations — shard policy, sticky cache, replication, GPU",
                      "DESIGN.md §4 (supporting, not a paper figure)");

  const std::size_t epochs =
      static_cast<std::size_t>(cfg.get_int("epochs", 4));

  auto p3c3t4 = [&](auto&& mutate) {
    ExperimentSpec spec = bench::base_spec(cfg, epochs);
    spec.parameter_servers = 3;
    spec.clients = 3;
    spec.tasks_per_client = 4;
    spec.alpha = "var";
    mutate(spec);
    return run_experiment(spec);
  };

  // 1. Shard policy.
  std::cout << "1) Shard policy (label skew amplifies the §IV-C client-drift"
               " effect):\n";
  Table shard_tbl({"policy", "final acc", "acc spread", "hours"});
  for (const ShardPolicy policy : {ShardPolicy::iid, ShardPolicy::label_skew}) {
    const TrainResult r =
        p3c3t4([&](ExperimentSpec& s) { s.shard_policy = policy; });
    const auto& e = r.final_epoch();
    shard_tbl.add_row({shard_policy_name(policy),
                       Table::fmt(e.mean_subtask_acc, 3),
                       Table::fmt(e.max_subtask_acc - e.min_subtask_acc, 3),
                       Table::fmt(r.totals.duration_s / 3600.0, 2)});
  }
  shard_tbl.print(std::cout);

  // 2. Sticky cache. Disabling = give every shard a poll-varying name is
  // invasive; instead compare wire bytes with caching (measured) against the
  // no-cache counterfactual (every download re-transferred).
  std::cout << "\n2) Sticky-file caching (BOINC feature, §III-B):\n";
  {
    const TrainResult r = p3c3t4([](ExperimentSpec&) {});
    const auto hits = r.totals.cache_hits;
    const double measured_mb =
        static_cast<double>(r.totals.bytes_wire) / (1024.0 * 1024.0);
    Table cache_tbl({"setting", "wire MB", "cache hits"});
    cache_tbl.add_row({"sticky cache on (measured)", Table::fmt(measured_mb, 1),
                       Table::fmt(hits)});
    // Counterfactual: each hit would have re-downloaded an average-sized
    // sticky artifact (shards dominate).
    const double avg_sticky_mb = measured_mb > 0 && r.totals.cache_hits > 0
                                     ? measured_mb * 0.5 / 50.0  // ~per-shard
                                     : 0.0;
    cache_tbl.add_row(
        {"cache off (counterfactual)",
         Table::fmt(measured_mb + avg_sticky_mb * static_cast<double>(hits), 1),
         "0"});
    cache_tbl.print(std::cout);
  }

  // 3. Replication.
  std::cout << "\n3) Workunit replication (BOINC redundancy, §II-C):\n";
  Table rep_tbl({"replication", "hours", "duplicates", "timeouts"});
  for (const std::size_t rep : {std::size_t{1}, std::size_t{2}}) {
    const TrainResult r = p3c3t4([&](ExperimentSpec& s) {
      s.replication = rep;
      s.preemptible = true;
      s.interruption_per_hour = 0.5;
    });
    rep_tbl.add_row({Table::fmt(rep), Table::fmt(r.totals.duration_s / 3600.0, 2),
                     Table::fmt(r.totals.duplicates),
                     Table::fmt(r.totals.timeouts)});
  }
  rep_tbl.print(std::cout);

  // 4. GPU fleet (cost model only — same catalogue machinery as Table I).
  std::cout << "\n4) GPU fleet (the paper's §V extension), 8 h of 5 clients:\n";
  Table gpu_tbl({"fleet", "$/hr std", "$/hr preempt", "per-subtask speedup"});
  for (const auto& [name, cat] :
       {std::pair{"CPU (Table I)", table1_catalog()},
        std::pair{"GPU", gpu_catalog()}}) {
    const auto fleet = make_client_fleet(cat, 5, true, 0.05);
    double speedup = 0.0;
    for (const auto& t : fleet) speedup += t.accel_factor;
    gpu_tbl.add_row({name,
                     Table::fmt(CostLedger::fleet_hourly_standard(fleet), 2),
                     Table::fmt(CostLedger::fleet_hourly_preemptible(fleet), 2),
                     Table::fmt(speedup / static_cast<double>(fleet.size()), 1) +
                         "x"});
  }
  gpu_tbl.print(std::cout);
  std::cout << "(preemptible GPU instances carry the same 70% discount — the "
               "paper's cost argument extends to GPUs, §V)\n";

  // 5. Wire codec. Uploads are the headline: q8 frames carry 8 bits per
  // weight instead of 32 (≥4x smaller); download pulls are billed as
  // version deltas in both delta modes. Accuracy must survive quantization.
  std::cout << "\n5) Wire codec (docs/SIMULATION.md §4b):\n";
  Table wire_tbl({"codec", "upload MB", "per-upload KB", "param pull MB",
                  "full-equiv MB", "final acc"});
  double full_upload_mb = 0.0;
  double full_acc = 0.0;
  for (const char* mode : {"full", "delta", "delta_q8"}) {
    const TrainResult r =
        p3c3t4([&](ExperimentSpec& s) { s.wire_codec = mode; });
    const double mb = 1024.0 * 1024.0;
    const double upload_mb = static_cast<double>(r.totals.bytes_uploaded) / mb;
    const double uploads = std::max(
        1.0, static_cast<double>(r.metrics.counters.at("client.completed")));
    const bool has_split = r.totals.param_bytes_full > 0;
    if (std::string(mode) == "full") {
      full_upload_mb = upload_mb;
      full_acc = r.final_epoch().mean_subtask_acc;
    }
    wire_tbl.add_row(
        {mode, Table::fmt(upload_mb, 2),
         Table::fmt(upload_mb * 1024.0 / uploads, 1),
         has_split
             ? Table::fmt(static_cast<double>(r.totals.param_bytes_wire) / mb,
                          2)
             : "-",
         has_split
             ? Table::fmt(static_cast<double>(r.totals.param_bytes_full) / mb,
                          2)
             : "-",
         Table::fmt(r.final_epoch().mean_subtask_acc, 3)});
    if (std::string(mode) == "delta_q8" && full_upload_mb > 0.0) {
      std::cout << "   q8 upload reduction vs full: "
                << Table::fmt(full_upload_mb / std::max(upload_mb, 1e-9), 1)
                << "x, accuracy delta vs full: "
                << Table::fmt(r.final_epoch().mean_subtask_acc - full_acc, 3)
                << "\n";
    }
  }
  wire_tbl.print(std::cout);
  return 0;
}
