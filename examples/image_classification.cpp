// Full image-classification walkthrough on the volunteer grid.
//
// The domain scenario from the paper's introduction: a small team needs to
// train an image classifier but cannot afford a dedicated cluster, so the
// job runs on a fleet of cheap preemptible instances. This example shows the
// whole system end to end with fault injection on:
//   * job setup (dataset synthesis, 50-way sharding, model + work generator),
//   * a preemptible P5C5T2 fleet with a Var α schedule,
//   * live trace of preemptions / timeout reassignments,
//   * the final accuracy/time/cost report.
#include <iostream>

#include "common/config.hpp"
#include "common/table.hpp"
#include "core/trainer.hpp"

int main(int argc, char** argv) {
  using namespace vcdl;
  const Config cfg = Config::from_args(argc, argv);

  ExperimentSpec spec;
  spec.parameter_servers = 5;
  spec.clients = 5;
  spec.tasks_per_client = 2;
  spec.alpha = "var";
  spec.max_epochs = static_cast<std::size_t>(cfg.get_int("max_epochs", 8));
  spec.target_accuracy = cfg.get_double("target_accuracy", 1.01);
  spec.preemptible = cfg.get_bool("preemptible", true);
  spec.interruption_per_hour = cfg.get_double("interruption_per_hour", 1.0);
  spec.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 7));
  spec.trace = true;

  std::cout << "Training a 10-class image classifier on a "
            << (spec.preemptible ? "preemptible" : "standard") << " "
            << spec.label() << " fleet (alpha schedule: " << spec.alpha
            << ", " << spec.num_shards << " subtasks/epoch)\n\n";

  VcTrainer trainer(spec);
  const TrainResult result = trainer.run();

  Table table({"epoch", "alpha", "hours", "mean_acc", "band", "val", "test"});
  for (const auto& e : result.epochs) {
    table.add_row({Table::fmt(e.epoch), Table::fmt(e.alpha, 3),
                   Table::fmt(e.end_time / 3600.0, 2),
                   Table::fmt(e.mean_subtask_acc, 3),
                   "[" + Table::fmt(e.min_subtask_acc, 3) + ", " +
                       Table::fmt(e.max_subtask_acc, 3) + "]",
                   Table::fmt(e.val_acc, 3), Table::fmt(e.test_acc, 3)});
  }
  table.print(std::cout);

  // Fault-tolerance events observed during the run.
  const TraceLog& trace = trainer.trace();
  std::cout << "\nFault-tolerance log:\n";
  for (const auto& kind :
       {TraceKind::preempted, TraceKind::instance_up, TraceKind::timeout_reassign}) {
    for (const auto& ev : trace.filter(kind)) {
      std::cout << "  t=" << Table::fmt(ev.time / 3600.0, 2) << "h  "
                << trace_kind_name(ev.kind) << "  " << ev.actor
                << (ev.detail.empty() ? "" : "  (" + ev.detail + ")") << "\n";
    }
  }

  const auto& t = result.totals;
  std::cout << "\nSummary\n"
            << "  duration        : " << Table::fmt(t.duration_s / 3600.0, 2)
            << " virtual hours\n"
            << "  final val acc   : "
            << Table::fmt(result.final_epoch().val_acc, 3) << "\n"
            << "  preemptions     : " << t.preemptions << "\n"
            << "  timeouts        : " << t.timeouts << "\n"
            << "  duplicates      : " << t.duplicates << "\n"
            << "  lost updates    : " << t.lost_updates << "\n"
            << "  wire traffic    : " << t.bytes_wire / 1024 << " KiB ("
            << t.cache_hits << " sticky-cache hits)\n"
            << "  cost            : $" << Table::fmt(t.cost_preemptible_usd, 2)
            << " preemptible vs $" << Table::fmt(t.cost_standard_usd, 2)
            << " standard\n";
  return 0;
}
