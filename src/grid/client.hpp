// Simulated grid client daemon — the BOINC client role (§II-C, §III-A).
//
// A SimClient runs on one (possibly preemptible) cloud instance. Its loop:
// poll the scheduler for up to Tn concurrent subtasks; for each subtask,
// download its input files (respecting the sticky-file cache and on-the-wire
// compression), execute the training callback, upload the parameter result,
// repeat. A preemption kills every in-flight subtask and wipes the local
// cache; the instance comes back after a replacement delay and resumes
// polling. Lost subtasks are recovered by scheduler deadlines.
//
// With a FaultInjector attached, downloads and uploads can drop or stall and
// completed payloads can be corrupted in transit. A dropped transfer is
// retried with capped exponential backoff (ClientConfig::retry); after
// max_attempts the client abandons the subtask through the scheduler's
// report_failure() fast-fail path, which requeues the replica immediately
// instead of letting it ride to the deadline. An upload that reaches a
// crashed grid server counts as a failed attempt and follows the same
// backoff — by the time it retries, the server may have recovered.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>

#include "grid/file_server.hpp"
#include "grid/scheduler.hpp"
#include "grid/server.hpp"
#include "sim/availability.hpp"
#include "sim/faults.hpp"
#include "sim/instance.hpp"
#include "sim/network.hpp"
#include "sim/preemption.hpp"
#include "sim/trace.hpp"
#include "tensor/exec_context.hpp"

namespace vcdl {

/// Output of the real training callback.
struct ExecOutcome {
  Blob payload;        // parameter copy to upload
  double work_units;   // abstract compute cost (drives virtual exec time)
};

/// Executes a subtask *for real* (trains the model on the shard). Called at
/// the virtual exec-start instant. The ExecContext is the client's own — its
/// worker pool splits the compute of this one subtask, and its scratch arena
/// persists across the client's subtasks (freed on preemption, like the rest
/// of the replaced instance's memory).
using ExecuteFn =
    std::function<ExecOutcome(const Workunit&, ClientId, ExecContext&)>;

struct ClientConfig {
  std::size_t max_concurrent = 2;  // the paper's Tn
  SimTime poll_interval_s = 10.0;  // idle re-poll period
  PreemptionProcess preemption;    // rate 0 ⇒ a standard (reliable) instance
  /// Volunteer duty cycle (§II-C "users may start or shutdown their devices
  /// any time"). Disabled by default — cloud instances are always on. Unlike
  /// a preemption, going offline keeps the sticky-file cache (the volunteer's
  /// disk survives).
  AvailabilityModel availability;
  ComputeModel compute;            // RAM/threads execution model
  /// Transfer retry/backoff policy; only exercised when transfers can fail
  /// (fault injection or a crashed grid server).
  RetryPolicy retry;
  /// Worker pool handed to the training callback via the client's
  /// ExecContext. Null = serial execution (the bit-exact reference path).
  ThreadPool* exec_pool = nullptr;
};

class SimClient {
 public:
  struct Stats {
    std::uint64_t completed = 0;
    std::uint64_t preemptions = 0;
    std::uint64_t offline_events = 0;  // volunteer availability churn
    std::uint64_t lost_inflight = 0;  // subtasks killed by preemption
    std::uint64_t cache_hits = 0;
    SimTime busy_s = 0.0;             // summed virtual execution time
    std::uint64_t downloads = 0;
    std::uint64_t bytes_downloaded = 0;
    std::uint64_t bytes_uploaded = 0;
    std::uint64_t transfer_failures = 0;  // dropped download/upload attempts
    std::uint64_t retries = 0;            // backoff retries scheduled
    std::uint64_t abandoned = 0;          // fast-fail give-ups after max tries
  };

  SimClient(ClientId id, InstanceType instance, ClientConfig config,
            SimEngine& engine, const NetworkModel& network,
            InstanceType server_instance, FileServer& files,
            Scheduler& scheduler, GridServer& server, TraceLog& trace,
            Rng rng, ExecuteFn execute);

  /// Attaches the run's fault injector (nullptr = fault-free; the default).
  /// Call before start().
  void set_fault_injector(FaultInjector* faults) { faults_ = faults; }

  /// Registers with the scheduler and schedules the first poll (and the
  /// first preemption, when the instance is preemptible).
  void start();
  /// Stops polling and cancels everything pending (job finished).
  void stop();

  ClientId id() const { return id_; }
  bool is_up() const { return up_; }
  const InstanceType& instance() const { return instance_; }
  std::size_t active_subtasks() const { return active_; }
  const Stats& stats() const { return stats_; }

 private:
  enum class TransferStage { download, upload };

  void poll();
  void schedule_poll(SimTime delay);
  void begin_unit(const Workunit& unit);
  void attempt_download(const Workunit& unit, std::size_t attempt);
  void exec_unit(const Workunit& unit);
  void finish_unit(const Workunit& unit, Blob payload);
  void attempt_upload(const Workunit& unit, std::shared_ptr<Blob> payload,
                      std::size_t attempt);
  /// Backoff-retry or fast-fail abandon after a dropped transfer.
  void transfer_failed(const Workunit& unit, TransferStage stage,
                       std::shared_ptr<Blob> payload, std::size_t attempt);
  void preempt();
  void restore();
  void arm_preemption();
  void go_offline();
  void come_online();
  void arm_availability();
  /// Whether any input actually needs bytes on the wire (cache misses).
  bool needs_transfer(const Workunit& unit) const;
  /// Simulated download time for the unit's inputs; updates caches.
  SimTime download_time(const Workunit& unit);
  void track(EventId id) { pending_events_.emplace(id.seq, id); }
  void untrack(std::uint64_t seq) { pending_events_.erase(seq); }
  void cancel_pending();
  std::string name() const { return "client-" + std::to_string(id_); }

  ClientId id_;
  InstanceType instance_;
  ClientConfig config_;
  SimEngine& engine_;
  const NetworkModel& network_;
  InstanceType server_instance_;
  FileServer& files_;
  Scheduler& scheduler_;
  GridServer& server_;
  TraceLog& trace_;
  Rng rng_;
  ExecuteFn execute_;
  ExecContext exec_;  // pool from config_.exec_pool + this client's arena
  FaultInjector* faults_ = nullptr;

  bool up_ = false;
  bool stopped_ = false;
  bool poll_scheduled_ = false;
  std::size_t active_ = 0;  // subtasks between download-start and upload-end
  std::map<std::string, std::uint64_t> cache_;  // sticky file → version
  // Last version downloaded per file (0 = never) — the delta base the
  // FileServer pull protocol encodes against. Wiped on preemption (the
  // replacement instance holds no copy), kept across offline periods.
  std::map<std::string, std::uint64_t> seen_versions_;
  // Whole EventId handles keyed by seq (cancel() needs the slot half too);
  // cancellable on preemption.
  std::map<std::uint64_t, EventId> pending_events_;
  Stats stats_;
};

}  // namespace vcdl
