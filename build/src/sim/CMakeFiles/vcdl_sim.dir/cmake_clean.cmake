file(REMOVE_RECURSE
  "CMakeFiles/vcdl_sim.dir/availability.cpp.o"
  "CMakeFiles/vcdl_sim.dir/availability.cpp.o.d"
  "CMakeFiles/vcdl_sim.dir/cost.cpp.o"
  "CMakeFiles/vcdl_sim.dir/cost.cpp.o.d"
  "CMakeFiles/vcdl_sim.dir/engine.cpp.o"
  "CMakeFiles/vcdl_sim.dir/engine.cpp.o.d"
  "CMakeFiles/vcdl_sim.dir/instance.cpp.o"
  "CMakeFiles/vcdl_sim.dir/instance.cpp.o.d"
  "CMakeFiles/vcdl_sim.dir/network.cpp.o"
  "CMakeFiles/vcdl_sim.dir/network.cpp.o.d"
  "CMakeFiles/vcdl_sim.dir/preemption.cpp.o"
  "CMakeFiles/vcdl_sim.dir/preemption.cpp.o.d"
  "CMakeFiles/vcdl_sim.dir/trace.cpp.o"
  "CMakeFiles/vcdl_sim.dir/trace.cpp.o.d"
  "libvcdl_sim.a"
  "libvcdl_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcdl_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
