#include "nn/optimizer.hpp"

#include <cmath>

namespace vcdl {
namespace {

// Lazily sizes per-parameter state to match the model.
void ensure_state(std::vector<std::vector<float>>& state,
                  const std::vector<Tensor*>& params) {
  if (state.size() == params.size()) return;
  VCDL_CHECK(state.empty(), "optimizer reused with a different model");
  state.reserve(params.size());
  for (const Tensor* p : params) state.emplace_back(p->numel(), 0.0f);
}

}  // namespace

void Sgd::step(Model& model) {
  auto params = model.params();
  auto grads = model.grads();
  const auto lr = static_cast<float>(lr_);
  for (std::size_t i = 0; i < params.size(); ++i) {
    auto w = params[i]->flat();
    auto g = grads[i]->flat();
    for (std::size_t j = 0; j < w.size(); ++j) w[j] -= lr * g[j];
  }
}

void MomentumSgd::step(Model& model) {
  auto params = model.params();
  auto grads = model.grads();
  ensure_state(velocity_, params);
  const auto lr = static_cast<float>(lr_);
  const auto mu = static_cast<float>(mu_);
  for (std::size_t i = 0; i < params.size(); ++i) {
    auto w = params[i]->flat();
    auto g = grads[i]->flat();
    auto& v = velocity_[i];
    VCDL_CHECK(v.size() == w.size(), "MomentumSgd: model shape changed");
    for (std::size_t j = 0; j < w.size(); ++j) {
      v[j] = mu * v[j] + g[j];
      w[j] -= lr * v[j];
    }
  }
}

void Adam::step(Model& model) {
  auto params = model.params();
  auto grads = model.grads();
  ensure_state(m_, params);
  ensure_state(v_, params);
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  const auto lr = static_cast<float>(lr_ * std::sqrt(bc2) / bc1);
  const auto b1 = static_cast<float>(beta1_);
  const auto b2 = static_cast<float>(beta2_);
  const auto eps = static_cast<float>(eps_);
  for (std::size_t i = 0; i < params.size(); ++i) {
    auto w = params[i]->flat();
    auto g = grads[i]->flat();
    auto& m = m_[i];
    auto& v = v_[i];
    VCDL_CHECK(m.size() == w.size(), "Adam: model shape changed");
    for (std::size_t j = 0; j < w.size(); ++j) {
      m[j] = b1 * m[j] + (1.0f - b1) * g[j];
      v[j] = b2 * v[j] + (1.0f - b2) * g[j] * g[j];
      w[j] -= lr * m[j] / (std::sqrt(v[j]) + eps);
    }
  }
}

std::unique_ptr<Optimizer> make_optimizer(const std::string& name, double lr) {
  if (name == "sgd") return std::make_unique<Sgd>(lr);
  if (name == "momentum") return std::make_unique<MomentumSgd>(lr, 0.9);
  if (name == "adam") return std::make_unique<Adam>(lr);
  throw InvalidArgument("make_optimizer: unknown optimizer '" + name + "'");
}

}  // namespace vcdl
