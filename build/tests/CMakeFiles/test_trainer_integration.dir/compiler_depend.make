# Empty compiler generated dependencies file for test_trainer_integration.
# This may be replaced when dependencies are built.
