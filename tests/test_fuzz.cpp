// Randomized property tests: thousands of random operation sequences against
// the scheduler, the event engine and the wire codec, checking invariants
// rather than specific outputs.
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "common/compress.hpp"
#include "common/rng.hpp"
#include "grid/scheduler.hpp"
#include "sim/engine.hpp"

namespace vcdl {
namespace {

class FuzzSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSeeds, SchedulerInvariantsHoldUnderRandomOps) {
  Rng rng(GetParam());
  Scheduler s;
  constexpr std::size_t kClients = 4;
  for (ClientId c = 0; c < kClients; ++c) s.register_client(c);

  SimTime now = 0.0;
  WorkunitId next_id = 1;
  std::size_t generated = 0;
  std::set<WorkunitId> done;
  // unit -> clients currently holding an assignment of it.
  std::map<WorkunitId, std::set<ClientId>> holding;

  for (int op = 0; op < 3000; ++op) {
    now += rng.uniform(0.0, 5.0);
    const auto action = rng.uniform_index(5);
    switch (action) {
      case 0: {  // add a unit
        Workunit wu;
        wu.id = next_id++;
        wu.shard = rng.uniform_index(8);
        wu.deadline_s = rng.uniform(10.0, 120.0);
        wu.replication = 1 + rng.uniform_index(2);
        wu.inputs = {FileRef{"shard/" + std::to_string(wu.shard), true}};
        s.add_unit(wu);
        ++generated;
        break;
      }
      case 1:
      case 2: {  // a client asks for work
        const ClientId c = rng.uniform_index(kClients);
        const auto units = s.request_work(c, 1 + rng.uniform_index(3), now);
        for (const auto& wu : units) {
          // Never handed a unit it already holds, never a retired unit.
          ASSERT_EQ(holding[wu.id].count(c), 0u);
          ASSERT_EQ(done.count(wu.id), 0u);
          holding[wu.id].insert(c);
        }
        break;
      }
      case 3: {  // a random holder reports a result
        std::vector<std::pair<WorkunitId, ClientId>> candidates;
        for (const auto& [unit, holders] : holding) {
          for (const ClientId c : holders) candidates.emplace_back(unit, c);
        }
        if (candidates.empty()) break;
        const auto [unit, client] =
            candidates[rng.uniform_index(candidates.size())];
        const bool first = s.report_result(client, unit, now);
        ASSERT_EQ(first, done.count(unit) == 0) << "unit " << unit;
        done.insert(unit);
        holding[unit].erase(client);
        break;
      }
      case 4: {  // deadlines fire
        for (const auto id : s.expire_deadlines(now)) {
          // Expired units must not already be done.
          ASSERT_EQ(done.count(id), 0u);
        }
        // Our local `holding` map can now be stale (the scheduler dropped
        // the assignment); rebuild lazily by clearing holders for expired
        // units is not possible without the client id, so just clear all —
        // re-assignments are still checked against `done`.
        for (auto& [unit, holders] : holding) {
          if (done.count(unit) == 0) holders.clear();
        }
        break;
      }
    }
    // Global invariants.
    ASSERT_EQ(s.all_done(), done.size() == generated);
    ASSERT_EQ(s.stats().generated, generated);
    ASSERT_EQ(s.stats().results, done.size());
  }
  // Drain: clients request everything and report it; the job must finish.
  for (int round = 0; round < 2000 && !s.all_done(); ++round) {
    now += 10.0;
    (void)s.expire_deadlines(now);
    for (ClientId c = 0; c < kClients; ++c) {
      for (const auto& wu : s.request_work(c, 4, now)) {
        s.report_result(c, wu.id, now);
        done.insert(wu.id);
      }
    }
  }
  EXPECT_TRUE(s.all_done());
  EXPECT_EQ(done.size(), generated);
}

TEST_P(FuzzSeeds, EngineAccountingUnderRandomScheduleAndCancel) {
  Rng rng(GetParam());
  SimEngine engine;
  std::size_t fired = 0;
  std::vector<EventId> cancellable;
  std::size_t scheduled = 0, cancelled = 0;

  for (int op = 0; op < 2000; ++op) {
    if (rng.bernoulli(0.7) || cancellable.empty()) {
      cancellable.push_back(
          engine.schedule(rng.uniform(0.0, 100.0), [&fired] { ++fired; }));
      ++scheduled;
    } else {
      const auto idx = rng.uniform_index(cancellable.size());
      if (engine.cancel(cancellable[idx])) ++cancelled;
      cancellable.erase(cancellable.begin() +
                        static_cast<std::ptrdiff_t>(idx));
    }
    if (rng.bernoulli(0.1)) engine.step();  // interleave execution
  }
  engine.run();
  EXPECT_EQ(fired + cancelled, scheduled);
  EXPECT_EQ(engine.pending(), 0u);
}

TEST_P(FuzzSeeds, CodecRoundTripsArbitraryBlobs) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t size = rng.uniform_index(20000);
    std::vector<std::uint8_t> bytes(size);
    // Mixed content: runs, ramps and noise segments.
    std::size_t i = 0;
    while (i < size) {
      const std::size_t seg = std::min<std::size_t>(
          size - i, 1 + rng.uniform_index(512));
      const auto mode = rng.uniform_index(3);
      const auto base = static_cast<std::uint8_t>(rng.uniform_index(256));
      for (std::size_t j = 0; j < seg; ++j, ++i) {
        switch (mode) {
          case 0: bytes[i] = base; break;
          case 1: bytes[i] = static_cast<std::uint8_t>(base + j); break;
          default: bytes[i] = static_cast<std::uint8_t>(rng.uniform_index(256));
        }
      }
    }
    const Blob in(std::move(bytes));
    const Blob out = decompress(compress(in));
    ASSERT_EQ(out, in) << "trial " << trial << " size " << size;
  }
}

TEST_P(FuzzSeeds, DecompressNeverCrashesOnGarbage) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> junk(rng.uniform_index(600));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.uniform_index(256));
    // Half the trials start with the right magic to reach deeper code paths.
    if (junk.size() >= 4 && rng.bernoulli(0.5)) {
      junk[0] = 'V'; junk[1] = 'C'; junk[2] = 'Z'; junk[3] = '1';
    }
    try {
      const Blob out = decompress(Blob(std::move(junk)));
      (void)out;  // accidentally valid stream: fine
    } catch (const CorruptData&) {
      // expected for malformed input
    }
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds,
                         ::testing::Values(1u, 7u, 42u, 99u, 12345u));

}  // namespace
}  // namespace vcdl
