#include "common/rng.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace vcdl {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(99);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIndexCoversRangeWithoutBias) {
  Rng rng(5);
  std::array<int, 7> counts{};
  const int n = 70000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_index(7)];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), n / 7.0, n / 7.0 * 0.1);
  }
}

TEST(Rng, UniformIndexRejectsZero) {
  Rng rng(5);
  EXPECT_THROW(rng.uniform_index(0), Error);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all five values hit
}

TEST(Rng, NormalMoments) {
  Rng rng(21);
  const int n = 200000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalWithParams) {
  Rng rng(22);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(31);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng rng(41);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ExponentialRejectsNonPositiveRate) {
  Rng rng(41);
  EXPECT_THROW(rng.exponential(0.0), Error);
  EXPECT_THROW(rng.exponential(-1.0), Error);
}

TEST(Rng, ForkIsDeterministicAndIndependent) {
  Rng parent(77);
  Rng a = parent.fork(1);
  Rng b = parent.fork(1);
  Rng c = parent.fork(2);
  EXPECT_EQ(a(), b());
  EXPECT_NE(a(), c());
}

TEST(Rng, ForkIndependentOfParentConsumption) {
  Rng p1(77), p2(77);
  (void)p1();
  (void)p1();
  EXPECT_EQ(p1.fork(9)(), p2.fork(9)());
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(55);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled.begin(), shuffled.end());
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, Splitmix64KnownAdvance) {
  std::uint64_t s = 0;
  const auto a = splitmix64(s);
  const auto b = splitmix64(s);
  EXPECT_NE(a, b);
  std::uint64_t s2 = 0;
  EXPECT_EQ(splitmix64(s2), a);
}

TEST(Rng, Mix64SensitiveToBothInputs) {
  EXPECT_NE(mix64(1, 2), mix64(2, 1));
  EXPECT_NE(mix64(1, 2), mix64(1, 3));
  EXPECT_EQ(mix64(1, 2), mix64(1, 2));
}

class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, LognormalIsPositiveAndMedianNearOne) {
  Rng rng(GetParam());
  const int n = 20001;
  std::vector<double> xs(n);
  for (auto& x : xs) {
    x = rng.lognormal(0.0, 0.5);
    ASSERT_GT(x, 0.0);
  }
  std::nth_element(xs.begin(), xs.begin() + n / 2, xs.end());
  EXPECT_NEAR(xs[n / 2], 1.0, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(1u, 42u, 1234567u, 0xFFFFFFFFFFFFull));

}  // namespace
}  // namespace vcdl
