file(REMOVE_RECURSE
  "CMakeFiles/test_grid_client.dir/test_grid_client.cpp.o"
  "CMakeFiles/test_grid_client.dir/test_grid_client.cpp.o.d"
  "test_grid_client"
  "test_grid_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_grid_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
