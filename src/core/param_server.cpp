#include "core/param_server.hpp"

#include <algorithm>
#include <memory>
#include <set>

#include "core/eval.hpp"
#include "core/test_hooks.hpp"
#include "core/vcasgd.hpp"
#include "grid/consensus.hpp"
#include "nn/model_io.hpp"
#include "obs/metrics.hpp"
#include "sim/engine.hpp"

namespace vcdl {
namespace {
struct AssimilatorMetrics {
  obs::Counter& updates =
      obs::registry().counter("assimilator.updates_applied");
  obs::Counter& outage_retries =
      obs::registry().counter("store.outage_retries");
  // Modeled (virtual-time) latencies — deterministic under simulation.
  obs::Histogram& alpha_mix_s =
      obs::registry().histogram("assimilator.alpha_mix_s", {0.0, 10.0, 50});
  obs::Histogram& gradient_age =
      obs::registry().histogram("assimilator.gradient_age", {0.0, 64.0, 64});
  obs::Histogram& read_s =
      obs::registry().histogram("store.read_s", {0.0, 5.0, 50});
  obs::Histogram& write_s =
      obs::registry().histogram("store.write_s", {0.0, 5.0, 50});
  obs::Gauge& staleness = obs::registry().gauge("store.staleness_at_read");
  // Wire-codec upload decoding (common/wire_codec.hpp).
  obs::Counter& frames_decoded =
      obs::registry().counter("wire_codec.frames_decoded");
  obs::Counter& base_misses =
      obs::registry().counter("wire_codec.base_misses");
  obs::Counter& frames_dropped =
      obs::registry().counter("wire_codec.frames_dropped");
};

AssimilatorMetrics& metrics() {
  static AssimilatorMetrics m;
  return m;
}
}  // namespace

VcAsgdAssimilator::VcAsgdAssimilator(
    SimEngine& engine, KvStore& store, FileServer& files, GridServer& server,
    const AlphaSchedule& schedule, Model eval_model, const Dataset& validation,
    InstanceType server_instance, Options options, TraceLog& trace, Rng rng,
    std::function<void(std::size_t, double)> on_assimilated)
    : engine_(engine), store_(store), files_(files), server_(server),
      schedule_(schedule), eval_model_(std::move(eval_model)),
      validation_(validation), server_instance_(std::move(server_instance)),
      options_(std::move(options)), trace_(trace), rng_(rng),
      on_assimilated_(std::move(on_assimilated)) {
  VCDL_CHECK(on_assimilated_ != nullptr, "VcAsgdAssimilator: null callback");
}

void VcAsgdAssimilator::publish_initial(const std::vector<float>& params) {
  // Resolve the shard plan on first publish (checkpoint replay re-enters
  // with the same-sized vector and keeps the plan).
  if (plan_.empty() || plan_.total() != params.size()) {
    plan_ = options_.plan.empty() || options_.plan.total() != params.size()
                ? ShardPlan::single(params.size())
                : options_.plan;
    base_rings_.assign(plan_.shards(), {});
    shard_stats_.assign(plan_.shards(), {});
  }
  published_ = params;
  for (std::size_t s = 0; s < plan_.shards(); ++s) {
    Blob blob = save_params(plan_.view(std::span<const float>(params), s));
    store_.put(shard_key(s), blob, 0);
    files_.publish(shard_key(s), std::move(blob), /*compress=*/true,
                   /*delta_capable=*/options_.wire_mode != WireMode::full);
  }
  if (options_.wire_mode != WireMode::full) {
    // Checkpoint replay re-enters here with rewound params while commits_
    // stays put; clear the rings so no stale pre-crash base survives under
    // its old version number. Future commits will *reuse* those version
    // numbers with different params — which is why ring hits also compare
    // the frame's base_hash: a pre-crash upload whose base_version matches
    // a post-replay entry hash-misses and takes the ring-miss path instead
    // of silently decoding against the wrong base.
    for (std::size_t s = 0; s < plan_.shards(); ++s) {
      const auto slice = plan_.view(std::span<const float>(published_), s);
      base_rings_[s].clear();
      base_rings_[s][commits_] = {params_hash(slice),
                                  {slice.begin(), slice.end()}};
    }
  }
}

SimTime VcAsgdAssimilator::validation_time() const {
  // Busy workers share the server instance's vCPUs; each wants ps_threads.
  const std::size_t busy = std::max<std::size_t>(1, server_.active_assimilations());
  const double share =
      static_cast<double>(server_instance_.vcpus) / static_cast<double>(busy);
  const double eff =
      std::min(static_cast<double>(options_.ps_threads), share);
  return options_.validate_work / (server_instance_.clock_ghz * eff);
}

std::vector<float> VcAsgdAssimilator::read_shards(
    std::vector<std::uint64_t>& read_versions) {
  std::vector<float> server_params(plan_.total());
  read_versions.assign(plan_.shards(), 0);
  for (std::size_t s = 0; s < plan_.shards(); ++s) {
    const auto current = store_.get(shard_key(s));
    VCDL_CHECK(current.has_value(), "assimilate: params missing from store");
    const std::vector<float> slice = load_params(current->value);
    const auto dst = plan_.view(std::span<float>(server_params), s);
    VCDL_CHECK(slice.size() == dst.size(),
               "assimilate: shard store blob size mismatch");
    std::copy(slice.begin(), slice.end(), dst.begin());
    read_versions[s] = current->version;
  }
  return server_params;
}

void VcAsgdAssimilator::commit(
    const std::vector<float>& params,
    const std::vector<std::uint64_t>& read_versions) {
  for (std::size_t s = 0; s < plan_.shards(); ++s) {
    Blob blob = save_params(plan_.view(std::span<const float>(params), s));
    const std::uint64_t new_version =
        store_.put(shard_key(s), blob, read_versions[s]);
    files_.publish(shard_key(s), std::move(blob), /*compress=*/true,
                   /*delta_capable=*/options_.wire_mode != WireMode::full);
    if (read_versions[s] > 0) {
      // Versions that landed between our read and this write — 0 on a
      // strong store (the transaction serializes), positive on an eventual
      // store when another worker's blend slipped in (its update is what we
      // clobbered). Shards commit in lockstep, so every shard reports the
      // same staleness and the gauge holds one value.
      metrics().staleness.set(
          static_cast<double>(new_version - read_versions[s] - 1));
    }
  }
  published_ = params;
  ++commits_;
  remember_base();
  metrics().updates.inc();
}

void VcAsgdAssimilator::remember_base() {
  if (options_.wire_mode == WireMode::full) return;
  std::set<std::uint64_t> pinned;
  for (const auto& [unit, bases] : exec_base_) {
    pinned.insert(bases.begin(), bases.end());
  }
  for (std::size_t s = 0; s < plan_.shards(); ++s) {
    auto& ring = base_rings_[s];
    const auto slice = plan_.view(std::span<const float>(published_), s);
    ring[commits_] = {params_hash(slice), {slice.begin(), slice.end()}};
    for (auto it = ring.begin();
         ring.size() > options_.version_ring && it != ring.end() &&
         it->first < commits_;) {
      if (pinned.count(it->first) > 0) {
        ++it;
      } else {
        it = ring.erase(it);
      }
    }
  }
}

std::optional<std::vector<float>> VcAsgdAssimilator::decode_payload(
    const Blob& payload) {
  if (is_shard_bundle(payload)) return decode_bundle(payload);
  if (!is_wire_frame(payload)) return load_params(payload);
  const WireFrame frame = read_frame_header(payload);
  const auto& ring = base_rings_[0];
  const auto it = ring.find(frame.base_version);
  if (it != ring.end() && it->second.hash == frame.base_hash) {
    metrics().frames_decoded.inc();
    ++shard_stats_[0].frames_decoded;
    return decode_params(payload, it->second.params);
  }
  metrics().base_misses.inc();
  ++shard_stats_[0].base_misses;
  if (frame.mode == WireMode::delta) {
    // Lossless deltas are zigzag diffs of the floats' *bit patterns*;
    // decoded against anything but their exact encode base they become
    // arbitrary floats (NaN/Inf included), so a ring miss drops the upload
    // rather than poisoning the blend.
    metrics().frames_dropped.inc();
    ++shard_stats_[0].frames_dropped;
    return std::nullopt;
  }
  // q8 diffs live in float space, so against the current published copy the
  // decode degrades to plain update application.
  return decode_params(payload, published_);
}

std::optional<std::vector<float>> VcAsgdAssimilator::decode_bundle(
    const Blob& payload) {
  const std::vector<Blob> parts = unpack_shard_frames(payload);
  if (parts.size() != plan_.shards()) {
    // A bundle from a different plan (or a sabotaged client) cannot be
    // routed; drop it like a ring-missed delta.
    metrics().frames_dropped.inc();
    return std::nullopt;
  }
  std::vector<float> out(plan_.total());
  for (std::size_t s = 0; s < parts.size(); ++s) {
    const WireFrame frame = read_frame_header(parts[s]);
    const auto dst = plan_.view(std::span<float>(out), s);
    const auto& ring = base_rings_[s];
    const auto it = ring.find(frame.base_version);
    std::vector<float> slice;
    if (it != ring.end() && it->second.hash == frame.base_hash) {
      metrics().frames_decoded.inc();
      ++shard_stats_[s].frames_decoded;
      slice = decode_params(parts[s], it->second.params);
    } else {
      metrics().base_misses.inc();
      ++shard_stats_[s].base_misses;
      if (frame.mode == WireMode::delta) {
        // One undecodable bit-space part poisons the concatenated vector;
        // the whole upload is dropped, mirroring the monolithic ring miss.
        metrics().frames_dropped.inc();
        ++shard_stats_[s].frames_dropped;
        return std::nullopt;
      }
      slice = decode_params(
          parts[s], plan_.view(std::span<const float>(published_), s));
    }
    VCDL_CHECK(slice.size() == dst.size(),
               "decode_bundle: shard slice size mismatch");
    std::copy(slice.begin(), slice.end(), dst.begin());
  }
  return out;
}

std::optional<std::vector<float>> VcAsgdAssimilator::peek_decode(
    const Blob& payload) const {
  if (is_shard_bundle(payload)) {
    // Consensus equivalence for sharded uploads: every part must ring-hit
    // (no speculative fallback), else the replica stays incomparable.
    const std::vector<Blob> parts = unpack_shard_frames(payload);
    if (parts.size() != plan_.shards()) return std::nullopt;
    std::vector<float> out(plan_.total());
    for (std::size_t s = 0; s < parts.size(); ++s) {
      const WireFrame frame = read_frame_header(parts[s]);
      const auto& ring = base_rings_[s];
      const auto it = ring.find(frame.base_version);
      if (it == ring.end() || it->second.hash != frame.base_hash) {
        return std::nullopt;
      }
      const std::vector<float> slice =
          decode_params(parts[s], it->second.params);
      const auto dst = plan_.view(std::span<float>(out), s);
      if (slice.size() != dst.size()) return std::nullopt;
      std::copy(slice.begin(), slice.end(), dst.begin());
    }
    return out;
  }
  if (!is_wire_frame(payload)) return load_params(payload);
  const WireFrame frame = read_frame_header(payload);
  const auto& ring = base_rings_[0];
  const auto it = ring.find(frame.base_version);
  if (it != ring.end() && it->second.hash == frame.base_hash) {
    return decode_params(payload, it->second.params);
  }
  // No speculative fallback decode here (unlike decode_payload): an
  // undecodable replica must stay incomparable, not coincidentally match.
  return std::nullopt;
}

std::optional<std::vector<float>> VcAsgdAssimilator::guarded_decode(
    const ResultEnvelope& env, const std::vector<float>& server_params) {
  std::optional<std::vector<float>> client_params = decode_payload(env.payload);
  if (client_params.has_value() &&
      blend_outlier(server_params, *client_params,
                    options_.blend_outlier_threshold)) {
    ++blend_rejections_;
    trace_.record(engine_.now(), TraceKind::blend_rejected, "assimilator",
                  env.unit.label() + " client-" + std::to_string(env.client));
    client_params.reset();
  }
  return client_params;
}

void VcAsgdAssimilator::note_exec_base(WorkunitId unit) {
  exec_base_[unit].push_back(commits_);
}

void VcAsgdAssimilator::observe_gradient_age(WorkunitId unit) {
  const auto it = exec_base_.find(unit);
  if (it == exec_base_.end()) return;  // trainer did not record this unit
  metrics().gradient_age.observe(
      static_cast<double>(commits_ - it->second.back()));
  // Dropping every replica's pin here is safe because the grid server
  // retires the unit on its first valid result (Scheduler::report_result)
  // and later duplicates never reach assimilate() — no further decode for
  // this unit can occur.
  exec_base_.erase(it);
}

void VcAsgdAssimilator::release_exec_base(WorkunitId unit) {
  exec_base_.erase(unit);
}

void VcAsgdAssimilator::assimilate(ResultEnvelope env, std::size_t ps_index,
                                   std::function<void()> on_done) {
  auto shared_env = std::make_shared<ResultEnvelope>(std::move(env));
  auto done = std::make_shared<std::function<void()>>(std::move(on_done));
  try_assimilate(std::move(shared_env), std::move(done), ps_index,
                 /*attempt=*/0);
}

void VcAsgdAssimilator::try_assimilate(
    std::shared_ptr<ResultEnvelope> env,
    std::shared_ptr<std::function<void()>> done, std::size_t ps_index,
    std::size_t attempt) {
  // Every continuation below checks the server generation it started under:
  // a crash bumps it, the worker slot was already reset, and this chain must
  // stop dead — committing pre-crash state after a checkpoint replay would
  // resurrect exactly what the crash destroyed.
  const std::uint64_t gen = server_.generation();
  const std::string ps_name = "ps-" + std::to_string(ps_index);

  // Injected store fault: one draw covers this attempt's read+write pair.
  double latency_factor = 1.0;
  if (faults_ != nullptr) {
    const auto fault = faults_->on_transfer(FaultSite::store);
    if (fault.dropped) {
      // Outage: back off and retry the whole attempt. Unbounded but capped —
      // the result is already retired at the scheduler, so abandoning it
      // here would strand the workunit.
      trace_.record(engine_.now(), TraceKind::store_fault, ps_name,
                    env->unit.label() + " retry " + std::to_string(attempt));
      metrics().outage_retries.inc();
      const SimTime delay = store_retry_.delay(attempt, rng_);
      engine_.schedule(delay, [this, env, done, ps_index, attempt, gen] {
        if (server_.generation() != gen) return;
        try_assimilate(env, done, ps_index, attempt + 1);
      });
      return;
    }
    latency_factor = fault.time_factor;
    if (latency_factor > 1.0) {
      trace_.record(engine_.now(), TraceKind::store_fault, ps_name,
                    env->unit.label() + " latency spike");
    }
  }

  const double alpha = schedule_.alpha(env->unit.epoch);
  const auto shared_env = env;

  if (store_.kind() == "strong") {
    // MySQL-like: the read-blend-write is one serializable transaction; the
    // virtual lock makes concurrent workers queue, then each pays the full
    // 1.29 s update latency. Validation happens outside the transaction.
    txn_lock_.acquire([this, shared_env, done, alpha, gen, latency_factor] {
      if (server_.generation() != gen) {
        txn_lock_.release();
        return;
      }
      metrics().read_s.observe(store_.latency().read_s * latency_factor);
      metrics().write_s.observe(store_.latency().write_s * latency_factor);
      metrics().alpha_mix_s.observe(store_.latency().update_s() *
                                    latency_factor);
      engine_.schedule(
          store_.latency().update_s() * latency_factor,
          [this, shared_env, done, alpha, gen] {
            if (server_.generation() != gen) {
              txn_lock_.release();
              return;
            }
            std::vector<std::uint64_t> read_versions;
            std::vector<float> server_params = read_shards(read_versions);
            const std::optional<std::vector<float>> client_params =
                guarded_decode(*shared_env, server_params);
            if (client_params.has_value()) {
              // Eq. (1) routed per shard slice — elementwise, so the
              // concatenation of the shard blends is bit-identical to one
              // full-span blend (the cross-shard property in
              // tests/test_shard_plane.cpp).
              for (std::size_t s = 0; s < plan_.shards(); ++s) {
                if (shard_hooks::misroute_blend && s == 0) continue;
                vcasgd_update(
                    plan_.view(std::span<float>(server_params), s),
                    plan_.view(std::span<const float>(*client_params), s),
                    alpha);
              }
              observe_gradient_age(shared_env->unit.id);
              commit(server_params, read_versions);
            } else {
              // Ring-missed lossless delta: the upload is dropped, but the
              // unit is already retired at the scheduler, so the pipeline
              // still validates (the unchanged params) and reports — an
              // abandoned chain would stall the epoch.
              release_exec_base(shared_env->unit.id);
            }
            txn_lock_.release();
            // Validation of the committed parameters.
            eval_model_.set_flat_params(server_params);
            const double acc = evaluate_accuracy_subsample(
                eval_model_, validation_, options_.validation_subsample, rng_,
                exec_);
            engine_.schedule(validation_time(),
                             [this, shared_env, done, acc, gen] {
                               if (server_.generation() != gen) return;
                               on_assimilated_(shared_env->unit.epoch, acc);
                               (*done)();
                             });
          });
    });
    return;
  }

  // Redis-like (eventual): read and write are independent events separated
  // only by the store latencies; two workers whose windows overlap clobber
  // each other (lost updates), exactly as in §III-D. Validation happens
  // *after* the write, outside the race window, as in the paper's pipeline
  // ("after assimilating ... the parameter server computes the validation
  // accuracy").
  metrics().read_s.observe(store_.latency().read_s * latency_factor);
  metrics().write_s.observe(store_.latency().write_s * latency_factor);
  metrics().alpha_mix_s.observe(store_.latency().update_s() * latency_factor);
  engine_.schedule(
      store_.latency().read_s * latency_factor,
      [this, shared_env, done, alpha, gen, latency_factor] {
        if (server_.generation() != gen) return;
        auto read_versions = std::make_shared<std::vector<std::uint64_t>>();
        auto server_params =
            std::make_shared<std::vector<float>>(read_shards(*read_versions));
        const std::optional<std::vector<float>> client_params =
            guarded_decode(*shared_env, *server_params);
        // A dropped upload (ring-missed lossless delta or a blend-guard
        // rejection) skips the blend and the commit but still flows through
        // validation + reporting: the unit is already retired at the
        // scheduler.
        const bool applied = client_params.has_value();
        if (applied) {
          // Eq. (1) per shard slice (see the strong path above).
          for (std::size_t s = 0; s < plan_.shards(); ++s) {
            if (shard_hooks::misroute_blend && s == 0) continue;
            vcasgd_update(
                plan_.view(std::span<float>(*server_params), s),
                plan_.view(std::span<const float>(*client_params), s), alpha);
          }
        }
        engine_.schedule(
            store_.latency().write_s * latency_factor,
            [this, shared_env, done, server_params, read_versions, applied,
             gen] {
              if (server_.generation() != gen) return;
              if (applied) {
                observe_gradient_age(shared_env->unit.id);
                commit(*server_params, *read_versions);
              } else {
                release_exec_base(shared_env->unit.id);
              }
              // Validate the committed copy (real forward passes, virtual
              // duration).
              eval_model_.set_flat_params(*server_params);
              const double acc = evaluate_accuracy_subsample(
                  eval_model_, validation_, options_.validation_subsample,
                  rng_, exec_);
              engine_.schedule(validation_time(),
                               [this, shared_env, done, acc, gen] {
                                 if (server_.generation() != gen) return;
                                 on_assimilated_(shared_env->unit.epoch, acc);
                                 (*done)();
                               });
            });
      });
}

}  // namespace vcdl
