file(REMOVE_RECURSE
  "CMakeFiles/preemptible_fleet.dir/preemptible_fleet.cpp.o"
  "CMakeFiles/preemptible_fleet.dir/preemptible_fleet.cpp.o.d"
  "preemptible_fleet"
  "preemptible_fleet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/preemptible_fleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
